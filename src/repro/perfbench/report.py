"""Perfbench report I/O: JSON schema, baselines, regression gate.

The report written to ``BENCH_hotpath.json`` has three layers:

* ``cases`` — the timings and fingerprints of this run ("after");
* ``baseline`` — optionally, the ``cases`` block of an earlier run
  ("before"), attached with :func:`attach_baseline`;
* ``speedup`` — per-case ``baseline best_s / current best_s`` ratios,
  computed when a baseline is attached.

:func:`check_regression` is the CI gate: it compares a fresh quick run
against the committed report and fails only on a large (default 2.5×)
slowdown of any shared case — generous enough to ride out noisy CI
hosts, tight enough to catch an accidental O(V)-per-interval
reintroduction.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.errors import ConfigError

__all__ = [
    "SCHEMA",
    "attach_baseline",
    "check_regression",
    "load_report",
    "render_case_table",
    "strip_timings",
    "validate_report",
    "write_report",
]

SCHEMA = "repro.perfbench/1"

#: Keys every case block must carry.
_CASE_KEYS = ("config", "timing", "fingerprint")


def validate_report(report: Dict[str, object]) -> None:
    """Raise :class:`ConfigError` unless ``report`` matches the schema."""
    problems: List[str] = []
    if report.get("schema") != SCHEMA:
        problems.append(
            f"schema must be {SCHEMA!r}, got {report.get('schema')!r}"
        )
    if not isinstance(report.get("quick"), bool):
        problems.append("'quick' must be a bool")
    cases = report.get("cases")
    if not isinstance(cases, dict) or not cases:
        problems.append("'cases' must be a non-empty object")
        cases = {}
    for name in sorted(cases):
        block = cases[name]
        if not isinstance(block, dict):
            problems.append(f"case {name!r} must be an object")
            continue
        for key in _CASE_KEYS:
            if not isinstance(block.get(key), dict):
                problems.append(f"case {name!r} is missing {key!r}")
        timing = block.get("timing")
        if isinstance(timing, dict):
            best = timing.get("best_s")
            if not isinstance(best, (int, float)) or best <= 0.0:
                problems.append(
                    f"case {name!r} timing.best_s must be a positive number"
                )
    baseline = report.get("baseline")
    if baseline is not None and not isinstance(baseline, dict):
        problems.append("'baseline' must be an object when present")
    if problems:
        raise ConfigError(
            "invalid perfbench report: " + "; ".join(problems)
        )


def strip_timings(report: Dict[str, object]) -> Dict[str, object]:
    """A deep copy of ``report`` with every ``timing`` block (and any
    ``speedup`` section) removed — what must be run-to-run identical."""
    stripped = json.loads(json.dumps(report))
    stripped.pop("speedup", None)
    for section in ("cases", "baseline"):
        block = stripped.get(section)
        if isinstance(block, dict):
            for name in sorted(block):
                if isinstance(block[name], dict):
                    block[name].pop("timing", None)
    return stripped


def _best_s(case_block: object) -> Optional[float]:
    if not isinstance(case_block, dict):
        return None
    timing = case_block.get("timing")
    if not isinstance(timing, dict):
        return None
    best = timing.get("best_s")
    if isinstance(best, (int, float)) and best > 0.0:
        return float(best)
    return None


def attach_baseline(
    report: Dict[str, object], baseline_report: Dict[str, object]
) -> Dict[str, object]:
    """A copy of ``report`` carrying ``baseline_report``'s cases as the
    "before" section, with per-case ``speedup`` ratios."""
    validate_report(baseline_report)
    merged = dict(report)
    baseline_cases = baseline_report.get("cases", {})
    merged["baseline"] = baseline_cases
    speedup: Dict[str, float] = {}
    current_cases = report.get("cases", {})
    assert isinstance(current_cases, dict)
    assert isinstance(baseline_cases, dict)
    for name in sorted(set(current_cases) & set(baseline_cases)):
        before = _best_s(baseline_cases[name])
        after = _best_s(current_cases[name])
        if before is not None and after is not None:
            speedup[name] = before / after
    merged["speedup"] = speedup
    return merged


def check_regression(
    report: Dict[str, object],
    baseline_report: Dict[str, object],
    limit: float = 2.5,
) -> List[str]:
    """Failure messages for every shared case that got > ``limit``×
    slower than the baseline; empty list means the gate passes."""
    if limit <= 1.0:
        raise ConfigError(f"regression limit must be > 1.0, got {limit}")
    current_cases = report.get("cases", {})
    baseline_cases = baseline_report.get("cases", {})
    assert isinstance(current_cases, dict)
    assert isinstance(baseline_cases, dict)
    shared = sorted(set(current_cases) & set(baseline_cases))
    if not shared:
        return ["no bench cases shared with the baseline report"]
    failures: List[str] = []
    for name in shared:
        before = _best_s(baseline_cases[name])
        after = _best_s(current_cases[name])
        if before is None or after is None:
            failures.append(f"{name}: missing best_s timing")
        elif after > limit * before:
            failures.append(
                f"{name}: {after:.3f} s vs baseline {before:.3f} s "
                f"({after / before:.2f}x > {limit}x limit)"
            )
    return failures


def load_report(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if not isinstance(report, dict):
        raise ConfigError(f"{path} does not contain a JSON object")
    return report


def write_report(report: Dict[str, object], path: str) -> None:
    """Sorted-key, newline-terminated JSON — byte-stable given equal
    content, so report diffs are reviewable."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_case_table(report: Dict[str, object]) -> str:
    """A text summary of the report's cases (plus speedups if any)."""
    from repro.analysis import format_table

    cases = report.get("cases", {})
    speedup = report.get("speedup", {})
    assert isinstance(cases, dict)
    assert isinstance(speedup, dict)
    rows = []
    for name in sorted(cases):
        block = cases[name]
        best = _best_s(block)
        timing = block.get("timing", {}) if isinstance(block, dict) else {}
        throughput = ""
        if isinstance(timing, dict):
            per_sec = timing.get("vm_intervals_per_sec",
                                 timing.get("runs_per_sec"))
            if isinstance(per_sec, (int, float)):
                throughput = f"{per_sec:,.0f}"
        ratio = speedup.get(name)
        rows.append((
            name,
            f"{best:.3f}" if best is not None else "?",
            throughput,
            f"{ratio:.2f}x" if isinstance(ratio, (int, float)) else "-",
        ))
    return format_table(
        ["case", "best (s)", "items/s", "speedup"], rows
    )
