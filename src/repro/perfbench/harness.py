"""Benchmark cases and their execution.

A :class:`BenchCase` names one measurement: either a repeated
single-day simulation (``kind="simulate_day"``, reporting the best and
mean wall time over ``repeats`` runs of the *same* ensemble, so trace
generation is timed separately from the event loop) or a serial sweep
batch (``kind="sweep"``, reporting whole-batch wall time and runs per
second through :class:`repro.farm.SweepRunner`).

Every case also records a *fingerprint* — savings fraction, energy,
migration counters, traffic — so a perfbench run doubles as a
determinism probe: two runs of the same tree must produce identical
reports once the ``timing`` blocks are stripped
(:func:`repro.perfbench.report.strip_timings`).

The ``clock`` argument threaded through this module is the only source
of wall time (the CLI injects ``time.perf_counter``); the package
itself stays inside the DET checker scope with no suppressions.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import strategy_by_name
from repro.errors import ConfigError
from repro.farm.config import FarmConfig
from repro.farm.runner import SweepRunner, clear_ensemble_cache
from repro.farm.simulation import FarmSimulation
from repro.farm.sweep import repetition_specs
from repro.farm.zones import simulate_zoned_day
from repro.simulator.randomness import RngStreams
from repro.traces.model import DayType
from repro.traces.sampler import TraceEnsemble, generate_ensemble
from repro.units import INTERVALS_PER_DAY

__all__ = [
    "BenchCase",
    "CaseResult",
    "Clock",
    "default_cases",
    "fullscale_cases",
    "quick_cases",
    "run_case",
    "run_perfbench",
]

#: Injected wall-clock reader (e.g. ``time.perf_counter``).
Clock = Callable[[], float]

_KINDS = ("simulate_day", "sweep", "zoned_day")


@dataclass(frozen=True)
class BenchCase:
    """One named measurement of the simulator."""

    name: str
    kind: str
    policy: str
    day: str
    seed: int
    home_hosts: int
    consolidation_hosts: int
    vms_per_host: int
    #: ``simulate_day``: timed repetitions over one shared ensemble.
    repeats: int = 3
    #: ``sweep``: independent day-runs in the serial batch.
    runs: int = 4
    #: ``zoned_day``: availability zones the farm is sharded into.
    zones: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(
                f"unknown bench kind {self.kind!r}; choose from {_KINDS}"
            )
        if self.repeats < 1 or self.runs < 1:
            raise ConfigError("repeats and runs must be >= 1")
        if self.zones < 1:
            raise ConfigError("zones must be >= 1")

    def farm_config(self) -> FarmConfig:
        return FarmConfig(
            home_hosts=self.home_hosts,
            consolidation_hosts=self.consolidation_hosts,
            vms_per_host=self.vms_per_host,
        )

    def config_dict(self) -> Dict[str, object]:
        """The case's knobs, for the JSON report (timing-free)."""
        return {
            "kind": self.kind,
            "policy": self.policy,
            "day": self.day,
            "seed": self.seed,
            "home_hosts": self.home_hosts,
            "consolidation_hosts": self.consolidation_hosts,
            "vms_per_host": self.vms_per_host,
            "repeats": self.repeats,
            "runs": self.runs,
            "zones": self.zones,
            "total_vms": self.home_hosts * self.vms_per_host,
        }


@dataclass(frozen=True)
class CaseResult:
    """A finished case: wall-clock timings plus a result fingerprint."""

    case: BenchCase
    timing: Dict[str, object]
    fingerprint: Dict[str, object]


def quick_cases() -> List[BenchCase]:
    """The tiny CI subset: seconds to run, still policy-diverse."""
    return [
        BenchCase("day/Default/16vms", "simulate_day", "Default",
                  "weekday", 0, 4, 2, 4, repeats=3),
        BenchCase("day/FulltoPartial/16vms", "simulate_day", "FulltoPartial",
                  "weekday", 0, 4, 2, 4, repeats=3),
        BenchCase("sweep/16vms", "sweep", "Default",
                  "weekday", 0, 4, 2, 4, runs=4),
        # The first scale tier: a 5k-VM farm sharded 8 ways, shards
        # fanned out over worker processes (one repeat keeps the quick
        # set quick).
        BenchCase("zoned/Default/5k-8z", "zoned_day", "Default",
                  "weekday", 0, 168, 16, 30, repeats=1, zones=8),
    ]


def default_cases() -> List[BenchCase]:
    """The full set: quick subset + mid scale + the 900-VM headline."""
    cases = quick_cases()
    cases.append(
        BenchCase("day/Default/100vms", "simulate_day", "Default",
                  "weekday", 0, 10, 2, 10, repeats=3)
    )
    for policy in ("OnlyPartial", "Default", "FulltoPartial", "NewHome"):
        cases.append(
            BenchCase(f"day/{policy}/900vms", "simulate_day", policy,
                      "weekday", 0, 30, 4, 30, repeats=3)
        )
    for gamma in (1, 3):
        # The robust planner's nlargest-per-candidate-bin inner loop is
        # the new hot path; pin it at the headline scale for both a
        # light and a heavy Γ.
        cases.append(
            BenchCase(f"day/GammaRobust@{gamma}/900vms", "simulate_day",
                      f"GammaRobust@{gamma}", "weekday", 0, 30, 4, 30,
                      repeats=3)
        )
    cases.append(
        BenchCase("sweep/900vms", "sweep", "Default",
                  "weekday", 0, 30, 4, 30, runs=3)
    )
    cases.append(
        # The second scale tier: 20k VMs over four zones (the
        # acceptance shape of the zoned pipeline).
        BenchCase("zoned/Default/20k-4z", "zoned_day", "Default",
                  "weekday", 0, 668, 16, 30, repeats=1, zones=4)
    )
    return cases


def fullscale_cases() -> List[BenchCase]:
    """The 100k-VM tier; minutes of wall time, so it is not part of
    ``default_cases`` — ``tests/test_farm_zones.py`` runs it behind the
    ``fullscale`` pytest marker."""
    return [
        BenchCase("zoned/Default/100k-16z", "zoned_day", "Default",
                  "weekday", 0, 3336, 32, 30, repeats=1, zones=16),
    ]


def _trace_seed(seed: int) -> int:
    """Identical derivation to :func:`repro.farm.simulate_day`."""
    return RngStreams(seed).get("traces").randrange(2**31)


def _build_ensemble(case: BenchCase, config: FarmConfig) -> TraceEnsemble:
    return generate_ensemble(
        config.total_vms,
        DayType(case.day),
        seed=_trace_seed(case.seed),
        config=config.traces,
    )


def _day_fingerprint(result) -> Dict[str, object]:
    """Everything result-shaped the report pins (no timings).

    Includes the equivalence battery's typed fingerprint
    (:func:`repro.equiv.fingerprint_from_result`), so a committed
    report diff can be fed straight into ``equiv compare`` when a
    future engine legitimately reorders floating-point work instead of
    drifting by accident.
    """
    import dataclasses

    from repro.equiv import fingerprint_from_result

    return {
        "savings_fraction": result.savings_fraction,
        "managed_joules": result.energy.managed_joules,
        "baseline_joules": result.energy.baseline_joules,
        "counters": dataclasses.asdict(result.counters),
        "network_total_mib": result.traffic.network_total_mib(),
        "delay_samples": len(result.delays),
        "peak_active_vms": result.peak_active_vms,
        "min_powered_hosts": result.min_powered_hosts,
        "equiv": fingerprint_from_result(result).as_dict(),
    }


def _run_simulate_day(clock: Clock, case: BenchCase) -> CaseResult:
    config = case.farm_config()
    policy = strategy_by_name(case.policy)
    started = clock()
    ensemble = _build_ensemble(case, config)
    ensemble_s = clock() - started
    runs_s: List[float] = []
    result = None
    for _ in range(case.repeats):
        started = clock()
        result = FarmSimulation(config, policy, ensemble,
                                seed=case.seed).run()
        runs_s.append(clock() - started)
    best_s = min(runs_s)
    vm_intervals = config.total_vms * INTERVALS_PER_DAY
    timing = {
        "ensemble_s": ensemble_s,
        "runs_s": runs_s,
        "best_s": best_s,
        "mean_s": sum(runs_s) / len(runs_s),
        "vm_intervals_per_sec": (
            vm_intervals / best_s if best_s > 0.0 else 0.0
        ),
    }
    return CaseResult(case, timing, _day_fingerprint(result))


def _run_sweep(clock: Clock, case: BenchCase) -> CaseResult:
    config = case.farm_config()
    policy = strategy_by_name(case.policy)
    specs = repetition_specs(
        config, policy, DayType(case.day), runs=case.runs,
        base_seed=case.seed,
    )
    clear_ensemble_cache()  # identical cache behaviour on every run
    runner = SweepRunner()
    started = clock()
    outcomes = runner.run(specs)
    best_s = clock() - started
    timing = {
        "best_s": best_s,
        "runs_per_sec": case.runs / best_s if best_s > 0.0 else 0.0,
    }
    fingerprint = {
        "savings_fractions": [
            outcome.result.savings_fraction for outcome in outcomes
        ],
        "ensemble_cache_hits": sum(
            1 for outcome in outcomes if outcome.ensemble_cached
        ),
    }
    return CaseResult(case, timing, fingerprint)


def _run_zoned_day(clock: Clock, case: BenchCase) -> CaseResult:
    """Time the whole zoned pipeline: partition, shard fan-out (process
    backend when zones > 1), and aggregation."""
    config = case.farm_config()
    policy = strategy_by_name(case.policy)
    runs_s: List[float] = []
    zoned = None
    for _ in range(case.repeats):
        clear_ensemble_cache()  # identical cache behaviour on every run
        runner = (
            SweepRunner(
                backend="process",
                workers=min(case.zones, os.cpu_count() or 1),
            )
            if case.zones > 1 else SweepRunner()
        )
        started = clock()
        zoned = simulate_zoned_day(
            config, policy, DayType(case.day),
            zones=case.zones, seed=case.seed, runner=runner,
        )
        runs_s.append(clock() - started)
    best_s = min(runs_s)
    vm_intervals = config.total_vms * INTERVALS_PER_DAY
    timing = {
        "runs_s": runs_s,
        "best_s": best_s,
        "mean_s": sum(runs_s) / len(runs_s),
        "vm_intervals_per_sec": (
            vm_intervals / best_s if best_s > 0.0 else 0.0
        ),
    }
    fingerprint = dict(_day_fingerprint(zoned.aggregate))
    fingerprint["zones"] = case.zones
    fingerprint["zone_managed_joules"] = zoned.zone_managed_joules()
    return CaseResult(case, timing, fingerprint)


def run_case(clock: Clock, case: BenchCase) -> CaseResult:
    """Execute one case; all wall time flows through ``clock``."""
    if case.kind == "simulate_day":
        return _run_simulate_day(clock, case)
    if case.kind == "zoned_day":
        return _run_zoned_day(clock, case)
    return _run_sweep(clock, case)


def _profile_case(
    clock: Clock, case: BenchCase, top: int
) -> str:
    """cProfile one extra run of ``case``; a pstats top-``top`` table."""
    config = case.farm_config()
    policy = strategy_by_name(case.policy)
    ensemble = _build_ensemble(case, config)
    profile = cProfile.Profile(clock)
    profile.enable()
    FarmSimulation(config, policy, ensemble, seed=case.seed).run()
    profile.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profile, stream=stream)
    stats.sort_stats("tottime").print_stats(top)
    header = f"cProfile top {top} (tottime) for {case.name}:"
    return header + "\n" + stream.getvalue()


def run_perfbench(
    clock: Clock,
    cases: Optional[Sequence[BenchCase]] = None,
    quick: bool = False,
    profile_top: int = 0,
) -> Tuple[Dict[str, object], Optional[str]]:
    """Run every case; returns ``(report, profile_table_or_None)``.

    The report is JSON-ready: schema tag, per-case config/timing/
    fingerprint blocks.  When ``profile_top > 0`` the largest
    ``simulate_day`` case is additionally profiled with cProfile (its
    timer is ``clock`` too) and the formatted table returned.
    """
    if cases is None:
        cases = quick_cases() if quick else default_cases()
    cases = list(cases)
    names = [case.name for case in cases]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate bench case names in {names}")
    report_cases: Dict[str, object] = {}
    for case in cases:
        outcome = run_case(clock, case)
        report_cases[case.name] = {
            "config": case.config_dict(),
            "timing": outcome.timing,
            "fingerprint": outcome.fingerprint,
        }
    report: Dict[str, object] = {
        "schema": "repro.perfbench/1",
        "quick": quick,
        "cases": report_cases,
    }
    profile_text: Optional[str] = None
    if profile_top > 0:
        day_cases = [c for c in cases if c.kind == "simulate_day"]
        if day_cases:
            target = max(
                day_cases, key=lambda c: c.home_hosts * c.vms_per_host
            )
            profile_text = _profile_case(clock, target, profile_top)
    return report, profile_text
