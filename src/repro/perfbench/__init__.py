"""Performance benchmark harness for the farm simulator.

``python -m repro.cli perfbench`` times :func:`simulate_day` and sweep
throughput across policies and cluster scales, emits a sorted-key JSON
report (``BENCH_hotpath.json`` at the repo root), and prints a cProfile
top-N table of the hottest simulator frames.  The committed report is
the baseline every future perf PR measures against; CI replays the
quick subset and fails on a large regression (see
:func:`check_regression`).

Determinism: this package lives inside the DET checker scope, so it
never reads the wall clock itself — every timing flows through a
``clock`` callable injected by the caller (the CLI passes
``time.perf_counter``).  Everything in the report except the ``timing``
blocks is a pure function of the case list, which
:func:`strip_timings` makes testable.
"""

from repro.perfbench.harness import (
    BenchCase,
    CaseResult,
    default_cases,
    fullscale_cases,
    quick_cases,
    run_case,
    run_perfbench,
)
from repro.perfbench.report import (
    SCHEMA,
    attach_baseline,
    check_regression,
    load_report,
    render_case_table,
    strip_timings,
    validate_report,
    write_report,
)

__all__ = [
    "BenchCase",
    "CaseResult",
    "default_cases",
    "fullscale_cases",
    "quick_cases",
    "run_case",
    "run_perfbench",
    "SCHEMA",
    "attach_baseline",
    "check_regression",
    "load_report",
    "render_case_table",
    "strip_timings",
    "validate_report",
    "write_report",
]
