"""Fault-outcome records and the degradation counters.

These are the small value objects the injector hands the simulation and
the simulation hands the metrics layer.  They carry no randomness of
their own: every stochastic decision is made by
:class:`repro.faults.plan.FaultInjector` from seeded streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigError

__all__ = [
    "WakeOutcome",
    "FaultCounters",
    "backoff_delays_s",
]


def backoff_delays_s(base_s: float, attempts: int) -> List[float]:
    """Exponential backoff schedule: delay before retry ``i`` (0-based).

    ``backoff_delays_s(4.0, 3) == [4.0, 8.0, 16.0]``.
    """
    if base_s <= 0.0:
        raise ConfigError(f"backoff base must be positive, got {base_s}")
    if attempts < 0:
        raise ConfigError(f"attempt count must be non-negative, got {attempts}")
    return [base_s * (2.0 ** index) for index in range(attempts)]


@dataclass(frozen=True)
class WakeOutcome:
    """How one host wake request plays out under fault injection."""

    #: Resume attempts that fail before success (or before giving up).
    failed_attempts: int
    #: True when the retry cap was exhausted and the host never woke;
    #: the caller must fall back (reroute the VM, skip the migration).
    gave_up: bool

    def __post_init__(self) -> None:
        if self.failed_attempts < 0:
            raise ConfigError("failed_attempts must be non-negative")

    @property
    def is_clean(self) -> bool:
        return self.failed_attempts == 0 and not self.gave_up


#: The clean outcome, shared so the common no-fault path allocates nothing.
CLEAN_WAKE = WakeOutcome(failed_attempts=0, gave_up=False)


@dataclass
class FaultCounters:
    """Injected faults and their recovery costs over one simulated day.

    Deliberately separate from
    :class:`repro.farm.metrics.MigrationCounters`: a zero-fault run must
    reproduce historical output byte-for-byte, including the counters'
    printed repr.
    """

    #: Migrations aborted mid-flight and rolled back.
    migration_aborts: int = 0
    #: Immediate same-operation retries after a rollback (the activation
    #: path retries a user-visible reintegration right away; planner
    #: work is retried by the next planning pass instead and not counted
    #: here).
    migration_retries: int = 0
    #: Traffic charged for aborted attempts (already on the wire when the
    #: abort fired), MiB.  Also folded into the regular ledger categories
    #: so Figure 10 reflects real bytes moved.
    aborted_traffic_mib: float = 0.0
    #: Failed host resume attempts that were retried with backoff.
    wake_retries: int = 0
    #: Wake sequences that exhausted the retry cap.
    wake_give_ups: int = 0
    #: Activations rerouted to another host because their home never woke.
    wake_reroutes: int = 0
    #: Memory-server crash events injected.
    memserver_crashes: int = 0
    #: Sleeping home hosts force-woken because their memory server died
    #: while serving consolidated VMs — the §3.3 pathology, quantified.
    crash_forced_wakeups: int = 0
    #: Partial VMs reintegrated by those forced wakeups.
    crash_forced_reintegrations: int = 0
    #: Demand page-fetch bursts that timed out and were re-sent.
    page_fetch_timeouts: int = 0
    #: Traffic re-sent by those retries, MiB (also in the ledger).
    page_retry_traffic_mib: float = 0.0

    @property
    def total_events(self) -> int:
        """Every injected fault, across classes."""
        return (
            self.migration_aborts
            + self.wake_retries
            + self.wake_give_ups
            + self.memserver_crashes
            + self.page_fetch_timeouts
        )

    @property
    def total_retries(self) -> int:
        """Every retry performed in response to an injected fault."""
        return (
            self.migration_retries
            + self.wake_retries
            + self.page_fetch_timeouts
        )

    @property
    def total_rollbacks(self) -> int:
        """Every operation rolled back in response to an injected fault."""
        return self.migration_aborts

    def as_dict(self) -> Dict[str, float]:
        """Field values keyed by name (report serialization)."""
        return {
            name: getattr(self, name)
            for name in (
                "migration_aborts",
                "migration_retries",
                "aborted_traffic_mib",
                "wake_retries",
                "wake_give_ups",
                "wake_reroutes",
                "memserver_crashes",
                "crash_forced_wakeups",
                "crash_forced_reintegrations",
                "page_fetch_timeouts",
                "page_retry_traffic_mib",
            )
        }

    def __str__(self) -> str:
        parts = [
            f"{name}={value:g}" if isinstance(value, float)
            else f"{name}={value}"
            for name, value in self.as_dict().items()
            if value
        ]
        return f"FaultCounters({', '.join(parts) or 'clean'})"
