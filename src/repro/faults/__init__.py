"""Deterministic fault injection for the farm simulator.

The package models the failure modes a real consolidation deployment
faces — aborted migrations, hosts that refuse to wake, memory-server
crashes, transient page-fetch timeouts — as seeded, reproducible
schedules threaded through the discrete-event simulation.  A null
profile injects nothing and reproduces fault-free runs byte-for-byte.
"""

from __future__ import annotations

from repro.faults.model import (
    CLEAN_WAKE,
    FaultCounters,
    WakeOutcome,
    backoff_delays_s,
)
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.profile import (
    FAULT_PROFILE_NAMES,
    FAULT_PROFILES,
    FaultProfile,
    fault_profile_by_name,
)

__all__ = [
    "FaultProfile",
    "FAULT_PROFILES",
    "FAULT_PROFILE_NAMES",
    "fault_profile_by_name",
    "FaultPlan",
    "FaultInjector",
    "WakeOutcome",
    "CLEAN_WAKE",
    "FaultCounters",
    "backoff_delays_s",
]
