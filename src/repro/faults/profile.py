"""Fault-rate configuration: how unreliable is the simulated datacenter.

A :class:`FaultProfile` parameterizes every fault class the injector can
produce.  All rates are *per exposure*: a migration-abort probability
applies to each migration operation, a wake-failure probability to each
resume attempt, a memory-server crash probability to each home host per
simulated day, and a page-timeout probability to each consolidation
episode's demand-fetch burst.

The defaults are all zero — the infallible cluster the paper simulates.
Named profiles (``none``, ``light``, ``heavy``) give the CLI and the
fault-rate sweeps shared reference points; :meth:`FaultProfile.scaled`
interpolates between them for sweep curves.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigError

__all__ = [
    "FaultProfile",
    "FAULT_PROFILES",
    "fault_profile_by_name",
]


@dataclass(frozen=True)
class FaultProfile:
    """Per-exposure fault rates plus retry/abort semantics knobs."""

    name: str = "custom"

    # -- migration aborts ------------------------------------------------
    #: Probability that any one migration operation (full, partial,
    #: relocation, conversion, reintegration) aborts mid-flight.
    migration_abort_prob: float = 0.0
    #: The abort fires at a progress fraction drawn uniformly from this
    #: window; the traffic and bottleneck occupancy already spent up to
    #: that fraction are charged even though the VM rolls back.
    abort_progress_min: float = 0.05
    abort_progress_max: float = 0.95

    # -- host wake failures ----------------------------------------------
    #: Probability that one resume attempt of a sleeping host fails (the
    #: Wake-on-LAN packet is lost, or the host hangs and is watchdogged
    #: back to sleep).  Each failed attempt still pays the full resume
    #: transition at resume power.
    wake_failure_prob: float = 0.0
    #: Retries after the first failed attempt before the wake is declared
    #: dead and the policy reroutes the waiting VM instead.
    wake_retry_cap: int = 3
    #: Backoff before retry ``i`` (0-based) is ``base * 2**i`` seconds.
    wake_backoff_base_s: float = 4.0

    # -- memory-server crashes -------------------------------------------
    #: Probability that a home host's memory server crashes at some point
    #: during the day (at most once per host; the crash instant is drawn
    #: uniformly over the day by the fault plan).
    memserver_crash_prob: float = 0.0

    # -- transient page-fetch timeouts -----------------------------------
    #: Probability that a consolidation episode's demand-fetch burst hits
    #: at least one timeout on the shared link.
    page_timeout_prob: float = 0.0
    #: After a first timeout, each further timeout in the same episode
    #: occurs with the same probability, capped here.
    page_timeout_retries_max: int = 3
    #: Pages re-fetched per timeout (the timed-out burst is re-sent).
    page_retry_mib: float = 8.0

    def __post_init__(self) -> None:
        for field_name in (
            "migration_abort_prob",
            "wake_failure_prob",
            "memserver_crash_prob",
            "page_timeout_prob",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{field_name} must be in [0, 1], got {value}")
        if not 0.0 < self.abort_progress_min <= self.abort_progress_max < 1.0:
            raise ConfigError(
                "abort progress window must satisfy "
                "0 < min <= max < 1, got "
                f"[{self.abort_progress_min}, {self.abort_progress_max}]"
            )
        if self.wake_retry_cap < 0:
            raise ConfigError("wake_retry_cap must be non-negative")
        if self.wake_backoff_base_s <= 0.0:
            raise ConfigError("wake_backoff_base_s must be positive")
        if self.page_timeout_retries_max < 1:
            raise ConfigError("page_timeout_retries_max must be >= 1")
        if self.page_retry_mib < 0.0:
            raise ConfigError("page_retry_mib must be non-negative")

    @property
    def is_null(self) -> bool:
        """True when no fault of any class can ever fire."""
        return (
            self.migration_abort_prob == 0.0
            and self.wake_failure_prob == 0.0
            and self.memserver_crash_prob == 0.0
            and self.page_timeout_prob == 0.0
        )

    # -- derived profiles ------------------------------------------------

    def scaled(self, factor: float, name: str = "") -> "FaultProfile":
        """Every fault probability multiplied by ``factor`` (capped at 1).

        The retry/abort semantics knobs are preserved; this is the
        fault-rate sweep primitive.
        """
        if factor < 0.0:
            raise ConfigError(f"scale factor must be non-negative, got {factor}")

        def scale(p: float) -> float:
            return min(1.0, p * factor)

        return dataclasses.replace(
            self,
            name=name or f"{self.name}x{factor:g}",
            migration_abort_prob=scale(self.migration_abort_prob),
            wake_failure_prob=scale(self.wake_failure_prob),
            memserver_crash_prob=scale(self.memserver_crash_prob),
            page_timeout_prob=scale(self.page_timeout_prob),
        )

    @classmethod
    def none(cls) -> "FaultProfile":
        """The infallible cluster of the paper's simulator."""
        return cls(name="none")

    @classmethod
    def light(cls) -> "FaultProfile":
        """Occasional failures: a well-run production cluster."""
        return cls(
            name="light",
            migration_abort_prob=0.02,
            wake_failure_prob=0.05,
            memserver_crash_prob=0.02,
            page_timeout_prob=0.05,
        )

    @classmethod
    def heavy(cls) -> "FaultProfile":
        """Frequent failures: flaky power control and a saturated link."""
        return cls(
            name="heavy",
            migration_abort_prob=0.10,
            wake_failure_prob=0.20,
            memserver_crash_prob=0.25,
            page_timeout_prob=0.20,
        )


def _registry() -> Dict[str, FaultProfile]:
    return {
        profile.name: profile
        for profile in (
            FaultProfile.none(),
            FaultProfile.light(),
            FaultProfile.heavy(),
        )
    }


#: The named profiles the CLI exposes via ``--fault-profile``.
FAULT_PROFILES: Dict[str, FaultProfile] = _registry()

#: Stable CLI ordering.
FAULT_PROFILE_NAMES: Tuple[str, ...] = ("none", "light", "heavy")


def fault_profile_by_name(name: str) -> FaultProfile:
    """Resolve a named profile; raises :class:`ConfigError` when unknown."""
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown fault profile {name!r}; choose from "
            f"{sorted(FAULT_PROFILES)}"
        )
