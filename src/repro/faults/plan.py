"""The seeded fault schedule and the runtime injector.

Two layers keep fault injection deterministic and decoupled:

* :class:`FaultPlan` is built **once, up front**, from a named
  :class:`~repro.simulator.randomness.RngStreams` stream: it fixes every
  fault that is scheduled against absolute simulation time (today:
  memory-server crash instants per home host).
* :class:`FaultInjector` answers **per-exposure** queries at runtime
  (does *this* migration abort? how many resume attempts does *this*
  wake need?) from its own per-fault-class streams, so enabling one
  fault class never perturbs the draws of another — ablations compare
  like with like.

Neither layer ever touches wall clocks or the global ``random`` module;
``repro.checkers``'s DET rules enforce this statically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import FaultInjectionError
from repro.faults.model import CLEAN_WAKE, WakeOutcome
from repro.faults.profile import FaultProfile
from repro.obs.events import CAT_FAULT
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulator.randomness import RngStreams

__all__ = [
    "FaultPlan",
    "FaultInjector",
]


@dataclass(frozen=True)
class FaultPlan:
    """Time-scheduled faults for one simulated day, fixed before it runs."""

    #: ``(host_id, crash_time_s)`` pairs, one per crashing memory server,
    #: in host-id order.  At most one crash per host per day.
    memserver_crashes: Tuple[Tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for host_id, crash_time in self.memserver_crashes:
            if host_id in seen:
                raise FaultInjectionError(
                    f"host {host_id} has more than one scheduled crash"
                )
            seen.add(host_id)
            if crash_time < 0.0:
                raise FaultInjectionError(
                    f"crash time {crash_time} for host {host_id} is negative"
                )

    @property
    def is_empty(self) -> bool:
        return not self.memserver_crashes

    def crash_schedule(self) -> Dict[int, float]:
        """Crash instant per host id."""
        return dict(self.memserver_crashes)

    @classmethod
    def build(
        cls,
        profile: FaultProfile,
        home_host_ids: Sequence[int],
        horizon_s: float,
        rng: random.Random,
    ) -> "FaultPlan":
        """Draw the day's scheduled faults from a seeded stream.

        With a null profile this returns an empty plan without drawing,
        so a zero-fault run consumes exactly the same random sequences
        as a build without fault support at all.
        """
        if horizon_s <= 0.0:
            raise FaultInjectionError(
                f"plan horizon must be positive, got {horizon_s}"
            )
        if profile.memserver_crash_prob <= 0.0:
            return cls()
        crashes = []
        for host_id in home_host_ids:
            if rng.random() < profile.memserver_crash_prob:
                crashes.append((host_id, rng.uniform(0.0, horizon_s)))
        return cls(memserver_crashes=tuple(crashes))


class FaultInjector:
    """Answers per-exposure fault queries from seeded per-class streams.

    One injector serves one simulation run.  Each fault class draws from
    its own named child stream of the run's :class:`RngStreams` family
    (``faults.migration``, ``faults.wake``, ``faults.pages``), and every
    query short-circuits without drawing when its fault class is
    disabled — a zero-fault run performs zero draws.
    """

    def __init__(
        self,
        profile: FaultProfile,
        streams: RngStreams,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.profile = profile
        self._migration_rng = streams.get("faults.migration")
        self._wake_rng = streams.get("faults.wake")
        self._page_rng = streams.get("faults.pages")
        #: Injection events go here; the tracer observes draws, it never
        #: influences them (it has no RNG access at all).
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- migration aborts ------------------------------------------------

    def migration_abort(self) -> Optional[float]:
        """Progress fraction at which this migration aborts, or ``None``.

        The fraction is how much of the transfer was already on the wire
        (and must be charged) when the abort fired.
        """
        profile = self.profile
        if profile.migration_abort_prob <= 0.0:
            return None
        if self._migration_rng.random() >= profile.migration_abort_prob:
            return None
        fraction = self._migration_rng.uniform(
            profile.abort_progress_min, profile.abort_progress_max
        )
        if self.tracer.enabled:
            self.tracer.event(
                "fault.migration_abort", CAT_FAULT, fraction=fraction
            )
        return fraction

    # -- host wake failures ----------------------------------------------

    def wake_outcome(self) -> WakeOutcome:
        """Resume-attempt outcome for one wake of a sleeping host.

        Each attempt independently fails with ``wake_failure_prob``; after
        the initial attempt plus ``wake_retry_cap`` retries have all
        failed the wake gives up and the caller reroutes.
        """
        profile = self.profile
        if profile.wake_failure_prob <= 0.0:
            return CLEAN_WAKE
        max_attempts = 1 + profile.wake_retry_cap
        failed = 0
        outcome: Optional[WakeOutcome] = None
        while failed < max_attempts:
            if self._wake_rng.random() >= profile.wake_failure_prob:
                outcome = WakeOutcome(failed_attempts=failed, gave_up=False)
                break
            failed += 1
        if outcome is None:
            outcome = WakeOutcome(failed_attempts=failed, gave_up=True)
        if self.tracer.enabled and not outcome.is_clean:
            self.tracer.event(
                "fault.wake_failure", CAT_FAULT,
                failed_attempts=outcome.failed_attempts,
                gave_up=outcome.gave_up,
            )
        return outcome

    # -- transient page-fetch timeouts -----------------------------------

    def page_timeouts(self) -> int:
        """Timed-out demand-fetch bursts in one consolidation episode.

        Geometric with the per-episode probability, capped by the
        profile so one unlucky episode cannot stall the day.
        """
        profile = self.profile
        if profile.page_timeout_prob <= 0.0:
            return 0
        timeouts = 0
        while (
            timeouts < profile.page_timeout_retries_max
            and self._page_rng.random() < profile.page_timeout_prob
        ):
            timeouts += 1
        if self.tracer.enabled and timeouts:
            self.tracer.event(
                "fault.page_timeouts", CAT_FAULT, timeouts=timeouts
            )
        return timeouts

    def __repr__(self) -> str:
        return f"<FaultInjector profile={self.profile.name!r}>"
