"""Inline suppression comments.

A finding is suppressed by a comment on the *flagged line*::

    value = random.Random()  # repro: noqa[DET102]
    value = random.Random()  # repro: noqa[DET102,UNIT101]
    value = random.Random()  # repro: noqa

``noqa`` with no bracket suppresses every rule on that line; with a
bracket it suppresses only the listed rule ids.  Suppressions are parsed
from real COMMENT tokens (via :mod:`tokenize`), so the marker inside a
string literal does not suppress anything.

A whole file opts out of specific rules with the file-level form (on any
line, conventionally near the top)::

    # repro: noqa-file[DET101]
    # repro: noqa-file[DET101,FLOW101]
    # repro: noqa-file

The bare form suppresses every rule in the file; use it only for
generated or vendored sources.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

#: Matches ``repro: noqa`` and ``repro: noqa[RULE1,RULE2]`` inside a
#: comment.  The negative lookahead keeps the line form from matching a
#: ``noqa-file`` marker's prefix.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?!-file)(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?",
)

#: Matches the file-level ``repro: noqa-file`` / ``noqa-file[RULES]`` form.
_NOQA_FILE_RE = re.compile(
    r"#\s*repro:\s*noqa-file(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?",
)

#: Sentinel rule-set meaning "suppress everything on this line".
ALL_RULES: FrozenSet[str] = frozenset({"*"})


def collect_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> suppressed rule ids (``ALL_RULES`` for bare noqa)."""
    suppressions: Dict[int, FrozenSet[str]] = {}
    reader = io.StringIO(source).readline
    try:
        tokens = tokenize.generate_tokens(reader)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                wanted = ALL_RULES
            else:
                wanted = frozenset(
                    r.strip().upper() for r in rules.split(",") if r.strip()
                )
                if not wanted:
                    wanted = ALL_RULES
            line = tok.start[0]
            existing = suppressions.get(line)
            if existing is None:
                suppressions[line] = wanted
            elif ALL_RULES <= existing or ALL_RULES <= wanted:
                suppressions[line] = ALL_RULES
            else:
                suppressions[line] = existing | wanted
    except tokenize.TokenError:
        # Unterminated strings etc.: the AST parse will report the real
        # problem; treat the file as having no suppressions.
        pass
    return suppressions


def is_suppressed(
    suppressions: Dict[int, FrozenSet[str]], line: int, rule_id: str
) -> bool:
    """Whether ``rule_id`` is suppressed on ``line``."""
    wanted = suppressions.get(line)
    if wanted is None:
        return False
    return wanted is ALL_RULES or "*" in wanted or rule_id.upper() in wanted


def collect_file_suppressions(source: str) -> FrozenSet[str]:
    """Rule ids the whole file suppresses via ``# repro: noqa-file``.

    Returns :data:`ALL_RULES` for the bare form; otherwise the union of
    every bracketed list in the file (an empty set when the marker is
    absent).
    """
    suppressed: set = set()
    reader = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_FILE_RE.search(tok.string)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                return ALL_RULES
            suppressed.update(
                r.strip().upper() for r in rules.split(",") if r.strip()
            )
    except tokenize.TokenError:
        pass
    return frozenset(suppressed)


def is_file_suppressed(file_rules: FrozenSet[str], rule_id: str) -> bool:
    """Whether ``rule_id`` is suppressed by a file-level noqa set."""
    return (
        file_rules is ALL_RULES
        or "*" in file_rules
        or rule_id.upper() in file_rules
    )
