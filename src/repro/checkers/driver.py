"""Per-file visitor driver: parse, run every rule, filter suppressions."""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence, Type

from repro.checkers.base import ModuleContext, Rule, all_rules
from repro.checkers.findings import Finding
from repro.checkers.suppress import (
    collect_file_suppressions,
    collect_suppressions,
    is_file_suppressed,
    is_suppressed,
)

# Importing the packs registers their rules.
from repro.checkers import rules as _rules  # noqa: F401  (import for side effect)


def module_name_for(path: str) -> Optional[str]:
    """Derive the dotted import path from a file path.

    Walks the path components looking for the ``repro`` package root, so
    both ``src/repro/farm/simulation.py`` and an absolute path to the
    same file map to ``repro.farm.simulation``.  Returns ``None`` when
    the file is not under a ``repro`` directory.
    """
    norm = os.path.normpath(path)
    parts = norm.split(os.sep)
    try:
        start = parts.index("repro")
    except ValueError:
        return None
    dotted = parts[start:]
    if dotted[-1].endswith(".py"):
        dotted[-1] = dotted[-1][: -len(".py")]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def check_source(
    source: str,
    path: str = "<string>",
    module_name: Optional[str] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> List[Finding]:
    """Check one source string; the entry point the tests use.

    ``module_name`` scopes package-restricted rules; ``None`` means
    every rule treats the module as in-scope.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 1
        col = (exc.offset or 1)
        return [
            Finding(
                path=path,
                line=line,
                col=col,
                rule_id="PARSE",
                message=f"syntax error: {exc.msg}",
                hint="fix the syntax error; no rules were run on this file",
            )
        ]
    except ValueError as exc:
        # ``ast.parse`` raises bare ValueError for e.g. null bytes.
        return [
            Finding(
                path=path,
                line=1,
                col=1,
                rule_id="PARSE",
                message=f"unparseable source: {exc}",
                hint="fix the file encoding; no rules were run on this file",
            )
        ]
    ctx = ModuleContext(
        path=path, source=source, tree=tree, module_name=module_name
    )
    suppressions = collect_suppressions(source)
    file_rules = collect_file_suppressions(source)
    found: List[Finding] = []
    for rule_cls in rules if rules is not None else all_rules():
        for finding in rule_cls().check(ctx):
            if is_file_suppressed(file_rules, finding.rule_id):
                continue
            if is_suppressed(suppressions, finding.line, finding.rule_id):
                continue
            found.append(finding)
    found.sort(key=lambda f: f.sort_key)
    return found


def read_source(path: str) -> str:
    """Read one source file as UTF-8 (the project's only encoding)."""
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def check_file(
    path: str, rules: Optional[Sequence[Type[Rule]]] = None
) -> List[Finding]:
    """Check one file on disk.

    A file the driver cannot read or decode is reported as a structured
    ``PARSE`` finding instead of raising, so one bad file cannot abort a
    whole-tree run.
    """
    try:
        source = read_source(path)
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                path=path,
                line=1,
                col=1,
                rule_id="PARSE",
                message=f"unreadable file: {exc}",
                hint="fix the file's encoding or permissions",
            )
        ]
    return check_source(
        source, path=path, module_name=module_name_for(path), rules=rules
    )


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__",)
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            files.append(path)
    return sorted(dict.fromkeys(files))


def check_paths(
    paths: Iterable[str], rules: Optional[Sequence[Type[Rule]]] = None
) -> List[Finding]:
    """Check every ``.py`` file under ``paths``; findings sorted by location."""
    found: List[Finding] = []
    for path in iter_python_files(paths):
        found.extend(check_file(path, rules=rules))
    found.sort(key=lambda f: f.sort_key)
    return found
