"""Command-line entry point: ``python -m repro.checkers [paths...]``.

Exit status is 0 when the tree is clean, 1 when any finding survives
suppression, 2 on usage errors.  ``--format json`` emits a machine-
readable report for CI; ``--rules`` restricts the run to specific rule
ids or pack prefixes (``DET``, ``UNIT``, ``SM``, ``API``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.checkers.base import all_rules, rules_by_id
from repro.checkers.driver import check_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checkers",
        description=(
            "AST-based invariant linter: determinism, unit-suffix safety, "
            "state machines, and API surface."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids or pack prefixes, e.g. DET101,UNIT",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_cls in all_rules():
            print(f"{rule_cls.rule_id:8s} {rule_cls.summary}")
        return 0

    rules = None
    if args.rules:
        try:
            rules = rules_by_id(
                r.strip() for r in args.rules.split(",") if r.strip()
            )
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2

    # A typo'd path silently reporting "0 findings" would turn the CI
    # gate into a no-op; fail loudly instead.
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return 2

    findings = check_paths(args.paths, rules=rules)

    if args.format == "json":
        report = {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
            "clean": not findings,
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun}")

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
