"""Command-line entry point: ``python -m repro.checkers [paths...]``.

Exit status is 0 when the tree is clean, 1 when any finding survives
suppression (and, in project mode, the baseline), 2 on usage errors.

Two modes share one interface:

- default: the per-file packs (``DET``, ``UNIT``, ``SM``, ``API``).
- ``--project``: the whole-program packs (``FLOW``, ``ENC``, ``TRC``),
  built from content-hash-cached per-module summaries, filtered through
  the reviewed baseline file.

``--format json`` emits a machine-readable report; ``--format sarif``
(project mode) emits SARIF 2.1.0 for code-scanning UIs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.checkers.base import all_rules, rules_by_id
from repro.checkers.driver import check_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checkers",
        description=(
            "AST-based invariant linter: determinism, unit-suffix safety, "
            "state machines, API surface, and (with --project) whole-"
            "program RNG/encapsulation/trace-purity analysis."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text; sarif requires --project)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help=(
            "comma-separated rule ids or pack prefixes, e.g. "
            "DET101,UNIT (per-file) or FLOW,ENC201 (with --project)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="run the whole-program FLOW/ENC/TRC packs instead of the "
        "per-file packs",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "reviewed baseline of accepted project findings (default: "
            "flow-baseline.json when it exists; project mode only)"
        ),
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="FILE",
        help=(
            "summary cache location (default: .repro_flow_cache.json; "
            "project mode only)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the summary cache for this run",
    )
    return parser


def _split_rules(spec: str) -> List[str]:
    return [r.strip() for r in spec.split(",") if r.strip()]


def _run_project(args: argparse.Namespace) -> int:
    from repro.checkers.flow.baseline import DEFAULT_BASELINE_PATH
    from repro.checkers.flow.cache import DEFAULT_CACHE_PATH
    from repro.checkers.flow.runner import (
        check_project,
        project_rule_metadata,
    )
    from repro.checkers.flow.sarif import to_sarif

    rule_ids = _split_rules(args.rules) if args.rules else None
    if rule_ids is not None:
        from repro.checkers.flow.project import project_rules_by_id

        if not project_rules_by_id(rule_ids):
            print(
                f"error: no project rule matches {args.rules!r}",
                file=sys.stderr,
            )
            return 2

    baseline = args.baseline
    if baseline is None and os.path.exists(DEFAULT_BASELINE_PATH):
        baseline = DEFAULT_BASELINE_PATH
    cache = None if args.no_cache else (args.cache or DEFAULT_CACHE_PATH)

    result = check_project(
        args.paths,
        rule_ids=rule_ids,
        baseline_path=baseline,
        cache_path=cache,
    )
    findings = result.findings

    if args.format == "sarif":
        print(
            json.dumps(
                to_sarif(findings, rule_meta=project_rule_metadata()),
                indent=2,
                sort_keys=True,
            )
        )
    elif args.format == "json":
        report = {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
            "clean": not findings,
            "cache": {
                "hits": result.cache_hits,
                "misses": result.cache_misses,
            },
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun}")

    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_cls in all_rules():
            print(f"{rule_cls.rule_id:8s} {rule_cls.summary}")
        from repro.checkers.flow.project import all_project_rules
        from repro.checkers.flow import runner as _runner  # noqa: F401

        for project_rule in all_project_rules():
            print(
                f"{project_rule.rule_id:8s} {project_rule.summary} "
                "(--project)"
            )
        return 0

    if args.format == "sarif" and not args.project:
        print("error: --format sarif requires --project", file=sys.stderr)
        return 2

    # A typo'd path silently reporting "0 findings" would turn the CI
    # gate into a no-op; fail loudly instead.
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return 2

    if args.project:
        return _run_project(args)

    rules = None
    if args.rules:
        try:
            rules = rules_by_id(_split_rules(args.rules))
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2

    findings = check_paths(args.paths, rules=rules)

    if args.format == "json":
        report = {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
            "clean": not findings,
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun}")

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
