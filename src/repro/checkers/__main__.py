"""``python -m repro.checkers`` dispatch."""

import sys

from repro.checkers.cli import main

sys.exit(main())
