"""Determinism rules (``DET1xx``).

Everything stochastic in the simulation packages must flow through
:class:`repro.simulator.randomness.RngStreams` (or an explicitly seeded
``random.Random``): module-level ``random.*`` calls share one hidden
global stream, wall-clock reads make runs time-dependent, and iterating
an unsorted ``set`` makes results depend on hash seeding.  These rules
apply only inside the result-producing packages listed in
:data:`SIMULATION_PACKAGES`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.checkers.base import ModuleContext, Rule, register
from repro.checkers.findings import Finding

#: Packages whose outputs feed energy figures; determinism is load-bearing.
SIMULATION_PACKAGES = (
    "repro.simulator",
    "repro.farm",
    "repro.core",
    "repro.policies",
    "repro.traces",
    "repro.vm",
    "repro.migration",
    "repro.pagesim",
    "repro.faults",
    "repro.obs",
    "repro.perfbench",
    "repro.equiv",
)

#: Attributes of the ``random`` module DET101 leaves to other rules:
#: ``Random`` is fine when seeded and ``SystemRandom`` is DET102's
#: specific complaint — flagging it here too would double-report.
_ALLOWED_RANDOM_ATTRS = frozenset({"Random", "SystemRandom"})

#: Wall-clock call patterns, as dotted names rooted at the module.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _DeterminismRule(Rule):
    """Shared scope gate for the DET pack."""

    def in_scope(self, ctx: ModuleContext) -> bool:
        if ctx.module_name == "repro.simulator.randomness":
            # The stream factory itself legitimately touches ``random``.
            return False
        return ctx.in_packages(SIMULATION_PACKAGES)


@register
class ModuleLevelRandomRule(_DeterminismRule):
    """Forbid the hidden global stream: ``random.random()`` and friends."""

    rule_id = "DET101"
    summary = "module-level random.* call in a simulation package"
    hint = "draw from RngStreams.get(name) or a seeded random.Random instead"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if (
                    dotted is not None
                    and dotted.startswith("random.")
                    and dotted.count(".") == 1
                    and dotted.split(".")[1] not in _ALLOWED_RANDOM_ATTRS
                ):
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"call to {dotted}() uses the global random stream",
                        self.hint,
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    for alias in node.names:
                        if alias.name not in _ALLOWED_RANDOM_ATTRS:
                            yield ctx.finding(
                                node,
                                self.rule_id,
                                f"'from random import {alias.name}' exposes "
                                "the global random stream",
                                self.hint,
                            )


@register
class UnseededRandomRule(_DeterminismRule):
    """``random.Random()`` with no seed draws from OS entropy."""

    rule_id = "DET102"
    summary = "unseeded random.Random() in a simulation package"
    hint = "pass an explicit seed, e.g. random.Random(seed) or RngStreams"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted in ("random.Random", "random.SystemRandom", "SystemRandom"):
                if dotted.endswith("SystemRandom"):
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        "SystemRandom is nondeterministic by design",
                        self.hint,
                    )
                elif not node.args and not node.keywords:
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        "random.Random() without a seed is nondeterministic",
                        self.hint,
                    )


@register
class WallClockRule(_DeterminismRule):
    """Simulated time comes from the event loop, never the host clock."""

    rule_id = "DET103"
    summary = "wall-clock read in a simulation package"
    hint = "use the simulator's virtual clock (Simulator.now) instead"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                yield ctx.finding(
                    node,
                    self.rule_id,
                    f"{dotted}() reads the wall clock",
                    self.hint,
                )


def _is_set_expr(node: ast.expr, known_sets: Set[str]) -> bool:
    """Syntactically a set: literal, comprehension, set()/frozenset()
    call, a name or ``self.attr`` bound to one, or a set-algebra BinOp
    of such."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        return dotted in ("set", "frozenset")
    if isinstance(node, (ast.Name, ast.Attribute)):
        dotted = dotted_name(node)
        return dotted in known_sets
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, known_sets) or _is_set_expr(
            node.right, known_sets
        )
    return False


def _is_set_annotation(node: ast.expr) -> bool:
    """``Set[...]`` / ``FrozenSet[...]`` / ``set`` annotations."""
    if isinstance(node, ast.Subscript):
        node = node.value
    dotted = dotted_name(node)
    return dotted in ("set", "frozenset", "Set", "FrozenSet",
                      "typing.Set", "typing.FrozenSet")


@register
class SetIterationRule(_DeterminismRule):
    """Iteration order over a set depends on hashes; sort first."""

    rule_id = "DET104"
    summary = "iteration over an unsorted set in a simulation package"
    hint = "iterate sorted(the_set) for a deterministic order"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        # Names (including ``self.attr``) bound to set expressions or
        # Set annotations anywhere in the module; a deliberately simple,
        # scope-free approximation.
        known_sets: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                if _is_set_expr(node.value, known_sets=set()):
                    for target in node.targets:
                        dotted = dotted_name(target)
                        if dotted is not None:
                            known_sets.add(dotted)
            elif isinstance(node, ast.AnnAssign):
                bound_to_set = node.value is not None and _is_set_expr(
                    node.value, known_sets=set()
                )
                if bound_to_set or _is_set_annotation(node.annotation):
                    dotted = dotted_name(node.target)
                    if dotted is not None:
                        known_sets.add(dotted)
            elif isinstance(node, ast.arg) and node.annotation is not None:
                if _is_set_annotation(node.annotation):
                    known_sets.add(node.arg)
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it, known_sets):
                    yield ctx.finding(
                        it,
                        self.rule_id,
                        "iterating a set yields a hash-dependent order",
                        self.hint,
                    )
