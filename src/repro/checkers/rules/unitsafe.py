"""Unit-suffix safety rules (``UNIT1xx``).

:mod:`repro.units` fixes one convention — seconds, MiB, MiB/s, watts,
joules — and the codebase encodes it in identifier suffixes (``_s``,
``_mib``, ``_mib_per_s``, ``_w``, ``_j``).  These rules infer a unit
*family* from the suffix of every name they can see and flag the three
operations that silently cross families: arithmetic/comparison, plain
assignment, and call arguments.  Mixing is sanctioned only by going
through a :mod:`repro.units` conversion helper, whose return family the
inferencer knows.

The inference is deliberately conservative: a violation is reported only
when *both* sides resolve to a definite, different family.  Numeric
literals are dimensionless and never conflict; multiplying or dividing
performs the obvious dimensional algebra (``mib / mib_per_s -> s``,
``w * s -> j``); anything else is unknown and exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.checkers.base import ModuleContext, Rule, register
from repro.checkers.findings import Finding
from repro.checkers.rules.determinism import dotted_name

# --- suffix -> family ------------------------------------------------------

#: Longest-match-first suffix table.  ``_seconds`` is the spelled-out
#: constant convention (``TRACE_INTERVAL_SECONDS``).
_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_mib_per_s", "MiB/s"),
    ("_seconds", "s"),
    ("_mib", "MiB"),
    ("_s", "s"),
    ("_w", "W"),
    ("_j", "J"),
)

#: units.py conversion helpers: name -> (param families, return family).
#: ``None`` entries are families outside the convention (pages, GiB, Wh)
#: that the suffix table cannot name; they act as unit casts.
_CONVERSIONS: Dict[str, Tuple[List[Optional[str]], Optional[str]]] = {
    "transfer_seconds": (["MiB", "MiB/s"], "s"),
    "mib_to_pages": (["MiB"], None),
    "pages_to_mib": ([None], "MiB"),
    "mib_to_gib": (["MiB"], None),
    "gib_to_mib": ([None], "MiB"),
    "joules_to_wh": (["J"], None),
    "wh_to_joules": ([None], "J"),
}


def family_of_name(identifier: str) -> Optional[str]:
    """Unit family encoded in an identifier's suffix, or ``None``."""
    lowered = identifier.lower()
    for suffix, family in _SUFFIXES:
        if lowered.endswith(suffix):
            return family
    return None


class _Inference:
    """Expression -> unit family, with simple dimensional algebra."""

    #: ``a * b`` products the convention can name.
    _PRODUCTS = {
        frozenset({"MiB/s", "s"}): "MiB",
        frozenset({"W", "s"}): "J",
    }
    #: ``a / b`` quotients: (numerator, denominator) -> family.
    _QUOTIENTS = {
        ("MiB", "MiB/s"): "s",
        ("MiB", "s"): "MiB/s",
        ("J", "s"): "W",
        ("J", "W"): "s",
    }

    def __init__(self, local_signatures: Dict[str, List[Optional[str]]]):
        self._local_signatures = local_signatures

    def family(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return family_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return family_of_name(node.attr)
        if isinstance(node, ast.UnaryOp):
            return self.family(node.operand)
        if isinstance(node, ast.BinOp):
            return self._binop_family(node)
        if isinstance(node, ast.Call):
            return self._call_family(node)
        if isinstance(node, ast.IfExp):
            true_family = self.family(node.body)
            false_family = self.family(node.orelse)
            if true_family == false_family:
                return true_family
            return None
        return None

    def _binop_family(self, node: ast.BinOp) -> Optional[str]:
        left = self.family(node.left)
        right = self.family(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None:
                return left if left == right else None
            return left if left is not None else right
        if isinstance(node.op, ast.Mult):
            if left is not None and right is not None:
                return self._PRODUCTS.get(frozenset({left, right}))
            # dimensionless literal scaling preserves the family
            if self._is_dimensionless(node.left):
                return right
            if self._is_dimensionless(node.right):
                return left
            return None
        if isinstance(node.op, ast.Div):
            if left is not None and right is not None:
                if left == right:
                    return None  # ratio: dimensionless
                return self._QUOTIENTS.get((left, right))
            if right is not None:
                return None
            if left is not None and self._is_dimensionless(node.right):
                return left
            return None
        return None

    def _call_family(self, node: ast.Call) -> Optional[str]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        simple = dotted.rsplit(".", 1)[-1]
        if simple in _CONVERSIONS:
            return _CONVERSIONS[simple][1]
        if simple in ("min", "max", "abs", "round", "float", "sum"):
            families = {
                f
                for f in (self.family(arg) for arg in node.args)
                if f is not None
            }
            if len(families) == 1:
                return families.pop()
        return None

    @staticmethod
    def _is_dimensionless(node: ast.expr) -> bool:
        return isinstance(node, ast.Constant) and isinstance(
            node.value, (int, float)
        )


def _collect_signatures(tree: ast.Module) -> Dict[str, List[Optional[str]]]:
    """Param families of functions defined at module top level."""
    signatures: Dict[str, List[Optional[str]]] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params = [a.arg for a in node.args.args]
            signatures[node.name] = [family_of_name(p) for p in params]
    return signatures


class _UnitRule(Rule):
    """Shared inference setup for the UNIT pack."""

    def _inference(self, ctx: ModuleContext) -> _Inference:
        return _Inference(_collect_signatures(ctx.tree))

    def in_scope(self, ctx: ModuleContext) -> bool:
        # units.py itself defines the conversions; everything else is fair
        # game, tests included implicitly via module_name=None.
        return ctx.module_name != "repro.units"


@register
class MixedArithmeticRule(_UnitRule):
    """``x_s + y_mib`` and ``x_s < y_mib`` are dimensionally nonsense."""

    rule_id = "UNIT101"
    summary = "arithmetic or comparison across unit families"
    hint = "convert through a repro.units helper before combining"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        infer = self._inference(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left = infer.family(node.left)
                right = infer.family(node.right)
                if left is not None and right is not None and left != right:
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"adds/subtracts {left} and {right}",
                        self.hint,
                    )
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                families = [infer.family(op) for op in operands]
                for (a, fam_a), (b, fam_b) in zip(
                    zip(operands, families), zip(operands[1:], families[1:])
                ):
                    if (
                        fam_a is not None
                        and fam_b is not None
                        and fam_a != fam_b
                    ):
                        yield ctx.finding(
                            node,
                            self.rule_id,
                            f"compares {fam_a} with {fam_b}",
                            self.hint,
                        )


@register
class MixedAssignmentRule(_UnitRule):
    """Assigning seconds into a ``_mib`` name corrupts downstream math."""

    rule_id = "UNIT102"
    summary = "assignment across unit families"
    hint = "rename the target or convert through a repro.units helper"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        infer = self._inference(ctx)
        for node in ast.walk(ctx.tree):
            pairs = []  # (target, value)
            if isinstance(node, ast.Assign):
                pairs = [(t, node.value) for t in node.targets]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                pairs = [(node.target, node.value)]
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                pairs = [(node.target, node.value)]
            for target, value in pairs:
                if not isinstance(target, (ast.Name, ast.Attribute)):
                    continue
                target_family = infer.family(target)
                value_family = infer.family(value)
                if (
                    target_family is not None
                    and value_family is not None
                    and target_family != value_family
                ):
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"assigns {value_family} to a {target_family} name",
                        self.hint,
                    )


@register
class MixedCallArgumentRule(_UnitRule):
    """Passing ``x_s`` for a ``size_mib`` parameter."""

    rule_id = "UNIT103"
    summary = "call argument crosses unit families"
    hint = "convert the argument through a repro.units helper"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        infer = self._inference(ctx)
        signatures = dict(_collect_signatures(ctx.tree))
        for name, (param_families, _ret) in _CONVERSIONS.items():
            signatures.setdefault(name, param_families)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            # Keyword arguments carry the parameter name directly.
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                param_family = family_of_name(kw.arg)
                value_family = infer.family(kw.value)
                if (
                    param_family is not None
                    and value_family is not None
                    and param_family != value_family
                ):
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"passes {value_family} for parameter "
                        f"{kw.arg!r} ({param_family})",
                        self.hint,
                    )
            # Positional arguments: only for signatures we know.
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            simple = dotted.rsplit(".", 1)[-1]
            if simple not in signatures or dotted.count(".") > 1:
                continue
            for index, arg in enumerate(node.args):
                if index >= len(signatures[simple]):
                    break
                param_family = signatures[simple][index]
                value_family = infer.family(arg)
                if (
                    param_family is not None
                    and value_family is not None
                    and param_family != value_family
                ):
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"positional arg {index + 1} of {simple}() is "
                        f"{value_family}, expected {param_family}",
                        self.hint,
                    )
