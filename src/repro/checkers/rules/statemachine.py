"""State-machine rules (``SM1xx``).

The cluster model declares three state machines: VM activity
(:class:`repro.vm.state.VmActivity`), VM residency
(:class:`repro.vm.state.Residency`), and host power
(:class:`repro.cluster.power.PowerState`, with a legal-transition
table).  These rules extract attribute assignments like
``host.power_state = PowerState.SLEEPING`` and validate them statically:
members must exist and belong to the right enum, power transitions must
be guarded by :func:`repro.cluster.power.check_transition`, guards must
agree with the value then assigned, and VM activity/residency may only
be mutated by the :class:`~repro.vm.machine.VirtualMachine` methods that
maintain the documented invariants.

The legal-transition table is imported from the defining module, not
duplicated here, so the linter can never drift from the runtime check.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.checkers.base import ModuleContext, Rule, register
from repro.checkers.findings import Finding
from repro.checkers.rules.determinism import dotted_name
from repro.cluster.power import _LEGAL_TRANSITIONS, PowerState
from repro.vm.state import Residency, VmActivity

#: attribute name -> (enum class name, member names)
_STATE_ATTRS: Dict[str, Tuple[str, FrozenSet[str]]] = {
    "power_state": ("PowerState", frozenset(m.name for m in PowerState)),
    "activity": ("VmActivity", frozenset(m.name for m in VmActivity)),
    "residency": ("Residency", frozenset(m.name for m in Residency)),
}

#: Legal power transitions by member name, from the runtime table.
_POWER_TABLE: Dict[str, FrozenSet[str]] = {
    src.name: frozenset(dst.name for dst in dsts)
    for src, dsts in _LEGAL_TRANSITIONS.items()
}

#: Modules allowed to assign VM activity/residency directly: the state
#: owner itself (machine.py maintains the documented invariants).
_VM_STATE_OWNERS = ("repro.vm.machine",)


def _enum_literal(node: ast.expr) -> Optional[Tuple[str, str]]:
    """``PowerState.SLEEPING`` -> ("PowerState", "SLEEPING")."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("PowerState", "VmActivity", "Residency")
    ):
        return node.value.id, node.attr
    return None


def _state_attr_target(node: ast.expr) -> Optional[str]:
    """The state-machine attribute name a target assigns, if any."""
    if isinstance(node, ast.Attribute) and node.attr in _STATE_ATTRS:
        return node.attr
    return None


def _functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function body plus the module itself as a pseudo-scope."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _scope_statements(scope: ast.AST) -> List[ast.stmt]:
    """Statements of a scope, without descending into nested functions."""
    out: List[ast.stmt] = []
    stack = list(getattr(scope, "body", []))
    while stack:
        stmt = stack.pop(0)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        out.append(stmt)
        for field in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, field, []))
        for handler in getattr(stmt, "handlers", []):
            stack.extend(handler.body)
    out.sort(key=lambda s: (s.lineno, s.col_offset))
    return out


@register
class UnknownStateMemberRule(Rule):
    """Typo catch: the assigned member must exist on the right enum."""

    rule_id = "SM102"
    summary = "state assignment uses an unknown or wrong-enum member"
    hint = "assign a declared member of the attribute's own state enum"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            if value is None:
                continue
            literal = _enum_literal(value)
            if literal is None:
                continue
            enum_name, member = literal
            for target in targets:
                attr = _state_attr_target(target)
                if attr is None:
                    continue
                expected_enum, members = _STATE_ATTRS[attr]
                if enum_name != expected_enum:
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f".{attr} assigned a {enum_name} member "
                        f"(expected {expected_enum})",
                        self.hint,
                    )
                elif member not in members:
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"{enum_name}.{member} is not a declared member",
                        self.hint,
                    )


@register
class UnguardedPowerAssignRule(Rule):
    """Power mutations must run the declared transition check first."""

    rule_id = "SM101"
    summary = "power_state assigned without a preceding check_transition"
    hint = (
        "call check_transition(current, target) first, or use the "
        "Host begin_/complete_ methods; __init__ may set the initial state"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for scope in _functions(ctx.tree):
            if (
                isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
                and scope.name == "__init__"
            ):
                continue  # initial state, not a transition
            statements = _scope_statements(scope)
            seen_check = False
            for stmt in statements:
                for call in ast.walk(stmt):
                    if isinstance(call, ast.Call):
                        dotted = dotted_name(call.func)
                        if dotted is not None and dotted.rsplit(".", 1)[
                            -1
                        ] == "check_transition":
                            seen_check = True
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if _state_attr_target(target) == "power_state":
                            if not seen_check:
                                yield ctx.finding(
                                    stmt,
                                    self.rule_id,
                                    ".power_state assigned without "
                                    "check_transition in the same scope",
                                    self.hint,
                                )


@register
class IllegalTransitionRule(Rule):
    """Statically-visible transitions must be in the declared table."""

    rule_id = "SM103"
    summary = "declared-table violation in a power transition"
    hint = "consult _LEGAL_TRANSITIONS in repro.cluster.power"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for scope in _functions(ctx.tree):
            statements = _scope_statements(scope)
            guard_target: Optional[str] = None
            for stmt in statements:
                for call in ast.walk(stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    dotted = dotted_name(call.func)
                    if (
                        dotted is None
                        or dotted.rsplit(".", 1)[-1] != "check_transition"
                        or len(call.args) != 2
                    ):
                        continue
                    current, target = call.args
                    current_lit = _enum_literal(current)
                    target_lit = _enum_literal(target)
                    if target_lit is not None and target_lit[0] == "PowerState":
                        guard_target = target_lit[1]
                        if target_lit[1] not in _POWER_TABLE:
                            continue  # SM102 territory (unknown member)
                    if (
                        current_lit is not None
                        and target_lit is not None
                        and current_lit[0] == target_lit[0] == "PowerState"
                        and current_lit[1] in _POWER_TABLE
                        and target_lit[1]
                        not in _POWER_TABLE[current_lit[1]]
                    ):
                        yield ctx.finding(
                            call,
                            self.rule_id,
                            f"transition {current_lit[1]} -> {target_lit[1]} "
                            "is not in the declared table",
                            self.hint,
                        )
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if _state_attr_target(target) != "power_state":
                            continue
                        literal = _enum_literal(stmt.value)
                        if (
                            literal is not None
                            and literal[0] == "PowerState"
                            and guard_target is not None
                            and literal[1] != guard_target
                            and literal[1] in _POWER_TABLE
                        ):
                            yield ctx.finding(
                                stmt,
                                self.rule_id,
                                f"check_transition guards a move to "
                                f"{guard_target} but {literal[1]} is "
                                "assigned",
                                self.hint,
                            )
                        guard_target = None


@register
class ForeignVmStateMutationRule(Rule):
    """Only machine.py may poke VM activity/residency directly."""

    rule_id = "SM104"
    summary = "VM activity/residency mutated outside repro.vm.machine"
    hint = (
        "use VirtualMachine.set_activity()/become_partial()/reintegrate() "
        "or the Host conversion methods so counts stay consistent"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module_name in _VM_STATE_OWNERS:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                attr = _state_attr_target(target)
                if attr in ("activity", "residency"):
                    # self.activity inside a class defining its own state
                    # machine is that machine's business, not a foreign
                    # mutation; only flag dotted receivers such as
                    # ``vm.activity``.
                    receiver = target.value  # type: ignore[union-attr]
                    if isinstance(receiver, ast.Name) and receiver.id == "self":
                        continue
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"direct .{attr} mutation from outside the owning "
                        "class",
                        self.hint,
                    )
