"""API-surface rules (``API1xx``).

``__all__`` is the contract between a package and its users; these rules
keep it honest.  Every listed export must resolve to a module-level
binding, no name may be listed twice, and — for package ``__init__.py``
files — every public binding must actually be listed, so adding an
import without exporting it (or exporting without importing) fails the
linter instead of surprising a downstream ``import *``.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, List, Optional, Set, Tuple

from repro.checkers.base import ModuleContext, Rule, register
from repro.checkers.findings import Finding


def _all_entries(tree: ast.Module) -> Optional[Tuple[ast.AST, List[str]]]:
    """The ``__all__`` node and its string entries, if statically listed."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None
        entries = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                entries.append(element.value)
            else:
                return None  # dynamically built; cannot check statically
        return node, entries
    return None


def _module_bindings(tree: ast.Module) -> Tuple[Set[str], bool]:
    """Names bound at module top level, and whether a star import occurs."""
    bound: Set[str] = set()
    star = False
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(
                    alias.asname
                    if alias.asname
                    else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    star = True
                else:
                    bound.add(alias.asname if alias.asname else alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        bound.add(name_node.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional imports (version gates, optional deps): collect
            # one level deep so try/except import fallbacks resolve.
            for sub in ast.walk(node):
                if isinstance(sub, ast.Import):
                    for alias in sub.names:
                        bound.add(
                            alias.asname
                            if alias.asname
                            else alias.name.split(".")[0]
                        )
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add(
                                alias.asname if alias.asname else alias.name
                            )
                elif isinstance(sub, (ast.FunctionDef, ast.ClassDef)):
                    bound.add(sub.name)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        for name_node in ast.walk(target):
                            if isinstance(name_node, ast.Name):
                                bound.add(name_node.id)
    return bound, star


@register
class UnresolvedExportRule(Rule):
    """``__all__`` names something the module never binds."""

    rule_id = "API101"
    summary = "__all__ entry does not resolve to a module-level name"
    hint = "import or define the symbol, or drop it from __all__"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parsed = _all_entries(ctx.tree)
        if parsed is None:
            return
        node, entries = parsed
        bound, star = _module_bindings(ctx.tree)
        if star:
            return  # cannot verify past a star import
        for entry in entries:
            if entry not in bound:
                yield ctx.finding(
                    node,
                    self.rule_id,
                    f"__all__ lists {entry!r} but the module never binds it",
                    self.hint,
                )


@register
class DuplicateExportRule(Rule):
    """Each public symbol is exported exactly once."""

    rule_id = "API102"
    summary = "duplicate __all__ entry"
    hint = "remove the repeated name"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parsed = _all_entries(ctx.tree)
        if parsed is None:
            return
        node, entries = parsed
        seen: Set[str] = set()
        for entry in entries:
            if entry in seen:
                yield ctx.finding(
                    node,
                    self.rule_id,
                    f"__all__ lists {entry!r} more than once",
                    self.hint,
                )
            seen.add(entry)


@register
class UnexportedPublicSymbolRule(Rule):
    """Package ``__init__`` bindings must all be in ``__all__``."""

    rule_id = "API103"
    summary = "public __init__ symbol missing from __all__"
    hint = "add the name to __all__ or rename it with a leading underscore"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if os.path.basename(ctx.path) != "__init__.py":
            return
        parsed = _all_entries(ctx.tree)
        if parsed is None:
            return
        node, entries = parsed
        bound, star = _module_bindings(ctx.tree)
        if star:
            return
        exported = set(entries)
        for name in sorted(bound):
            if name.startswith("_"):
                continue
            if name not in exported:
                yield ctx.finding(
                    node,
                    self.rule_id,
                    f"{name!r} is bound in __init__.py but not in __all__",
                    self.hint,
                )
