"""The four repo-specific rule packs.

Importing this package registers every rule with the global registry in
:mod:`repro.checkers.base`:

* ``DET1xx`` — determinism (:mod:`repro.checkers.rules.determinism`);
* ``UNIT1xx`` — unit-suffix safety (:mod:`repro.checkers.rules.unitsafe`);
* ``SM1xx`` — state machines (:mod:`repro.checkers.rules.statemachine`);
* ``API1xx`` — export surface (:mod:`repro.checkers.rules.api`).
"""

from repro.checkers.rules import api, determinism, statemachine, unitsafe

__all__ = ["api", "determinism", "statemachine", "unitsafe"]
