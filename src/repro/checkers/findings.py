"""Structured lint findings.

A :class:`Finding` pins one rule violation to a ``file:line:col``
location, carries the machine-readable rule id (``DET101``, ``UNIT101``,
...), a human message, and a short fix hint.  Findings sort by location
so reports are stable across runs and platforms.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Tuple


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    hint: str = ""

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """One-line human-readable report entry."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text
