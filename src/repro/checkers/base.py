"""Rule base class, per-file module context, and the rule registry.

A rule is a small object with an id, a one-line summary, and a
``check(ctx)`` generator yielding :class:`~repro.checkers.findings.Finding`
objects for one parsed module.  Rules register themselves with
:func:`register` at import time; the driver instantiates every registered
rule for every file it visits.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Type

from repro.checkers.findings import Finding


@dataclasses.dataclass
class ModuleContext:
    """Everything a rule may inspect about one source file.

    ``module_name`` is the dotted import path (``repro.farm.simulation``)
    when it can be derived from the file path, else ``None`` (synthetic
    sources in tests).  Rules that scope themselves to specific packages
    treat ``None`` as in-scope so test fixtures exercise them directly.
    """

    path: str
    source: str
    tree: ast.Module
    module_name: Optional[str] = None

    def finding(
        self,
        node: ast.AST,
        rule_id: str,
        message: str,
        hint: str = "",
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
            hint=hint,
        )

    def in_packages(self, prefixes: Iterable[str]) -> bool:
        """Whether this module lives under one of the dotted prefixes.

        Unknown module names (synthetic sources) count as in-scope.
        """
        if self.module_name is None:
            return True
        return any(
            self.module_name == p or self.module_name.startswith(p + ".")
            for p in prefixes
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`rule_id`, :attr:`summary`, and :attr:`hint`,
    and implement :meth:`check`.
    """

    rule_id: str = ""
    summary: str = ""
    hint: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.rule_id}: {self.summary}>"


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_cls`` to the global registry."""
    rule_id = rule_cls.rule_id
    if not rule_id:
        raise ValueError(f"rule {rule_cls.__name__} has no rule_id")
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, sorted by rule id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def rules_by_id(rule_ids: Iterable[str]) -> List[Type[Rule]]:
    """Resolve rule ids (or pack prefixes like ``DET``) to classes."""
    wanted: List[Type[Rule]] = []
    for rid in rule_ids:
        if rid in _REGISTRY:
            wanted.append(_REGISTRY[rid])
            continue
        pack = [cls for k, cls in sorted(_REGISTRY.items()) if k.startswith(rid)]
        if not pack:
            raise KeyError(f"unknown rule or pack {rid!r}")
        wanted.extend(pack)
    return wanted
