"""The ``--project`` entry point: summarise, link, check, baseline.

Ties the layers together: cached per-module summaries feed one
:class:`~repro.checkers.flow.project.ProjectContext`, every registered
project rule runs against it, and the result is filtered through inline
suppressions and the reviewed baseline before rendering.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence

from repro.checkers.driver import (
    iter_python_files,
    module_name_for,
    read_source,
)
from repro.checkers.findings import Finding
from repro.checkers.flow.baseline import (
    DEFAULT_BASELINE_PATH,
    apply_baseline,
    load_baseline,
)
from repro.checkers.flow.cache import DEFAULT_CACHE_PATH, SummaryCache
from repro.checkers.flow.project import (
    ProjectContext,
    ProjectFinding,
    all_project_rules,
    project_rules_by_id,
)
from repro.checkers.flow.summary import ModuleSummary
from repro.checkers.suppress import is_file_suppressed, is_suppressed

# Importing the packs registers the project rules.
from repro.checkers.flow import rules_enc as _enc  # noqa: F401
from repro.checkers.flow import rules_flow as _flow  # noqa: F401
from repro.checkers.flow import rules_trc as _trc  # noqa: F401


@dataclasses.dataclass
class ProjectResult:
    """Everything a caller (CLI, tests, CI) needs from one run."""

    findings: List[Finding]  # final, post-suppression/baseline, sorted
    project_findings: List[ProjectFinding]  # same set, with function info
    context: ProjectContext
    cache_hits: int
    cache_misses: int


def check_project(
    paths: Sequence[str],
    rule_ids: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = DEFAULT_BASELINE_PATH,
    cache_path: Optional[str] = DEFAULT_CACHE_PATH,
) -> ProjectResult:
    """Run the whole-program packs over every ``.py`` file in ``paths``."""
    cache = SummaryCache(cache_path)
    summaries: List[ModuleSummary] = []
    unreadable: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = read_source(path)
        except (OSError, UnicodeDecodeError) as exc:
            unreadable.append(
                Finding(
                    path=path,
                    line=1,
                    col=1,
                    rule_id="PARSE",
                    message=f"unreadable file: {exc}",
                    hint="fix the file's encoding or permissions",
                )
            )
            continue
        summaries.append(cache.summarize(source, path, module_name_for(path)))
    cache.save()

    context = ProjectContext(summaries)
    rules = (
        project_rules_by_id(rule_ids)
        if rule_ids is not None
        else all_project_rules()
    )

    by_path: Dict[str, ModuleSummary] = {s.path: s for s in summaries}
    raw: List[ProjectFinding] = []
    for rule_cls in rules:
        raw.extend(rule_cls().check(context))

    # Inline suppressions, then dedupe (a call recorded both in a lambda
    # and its enclosing function must yield one finding, not two).
    seen = set()
    kept: List[ProjectFinding] = []
    for pf in raw:
        finding = pf.finding
        summary = by_path.get(finding.path)
        if summary is not None:
            if is_file_suppressed(
                frozenset(summary.file_suppressions), finding.rule_id
            ):
                continue
            if is_suppressed(
                {k: frozenset(v) for k, v in summary.suppressions.items()},
                finding.line,
                finding.rule_id,
            ):
                continue
        key = (finding.path, finding.line, finding.col, finding.rule_id)
        if key in seen:
            continue
        seen.add(key)
        kept.append(pf)

    extra: List[Finding] = list(unreadable)
    for summary in summaries:
        if summary.parse_error is not None:
            line, col, msg = summary.parse_error
            extra.append(
                Finding(
                    path=summary.path,
                    line=line,
                    col=col,
                    rule_id="PARSE",
                    message=f"syntax error: {msg}",
                    hint=(
                        "fix the syntax error; this file is invisible to "
                        "the whole-program analysis until it parses"
                    ),
                )
            )

    if baseline_path is not None and os.path.exists(baseline_path):
        try:
            entries = load_baseline(baseline_path)
        except (ValueError, OSError) as exc:
            entries = []
            extra.append(
                Finding(
                    path=baseline_path,
                    line=1,
                    col=1,
                    rule_id="BASELINE",
                    message=f"unusable baseline file: {exc}",
                    hint="repair or delete the baseline file",
                )
            )
        kept, stale = apply_baseline(kept, entries)
        extra.extend(stale)

    findings = [pf.finding for pf in kept] + extra
    findings.sort(key=lambda f: f.sort_key)
    return ProjectResult(
        findings=findings,
        project_findings=kept,
        context=context,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )


def project_rule_metadata() -> List[Dict[str, str]]:
    """SARIF-ready metadata for every registered project rule."""
    return [
        {
            "id": cls.rule_id,
            "shortDescription": {"text": cls.summary},
            "help": {"text": cls.hint},
        }
        for cls in all_project_rules()
    ]
