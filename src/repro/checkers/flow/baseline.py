"""Reviewed baseline: accepted project findings, with reasons.

A baseline entry matches on ``(rule, path, function)`` — deliberately
line-independent, so unrelated edits in a file do not unpin accepted
findings.  Every entry carries a human-written ``reason``; an entry that
no longer matches anything is itself reported (rule id ``BASELINE``) so
the file cannot rot.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Tuple

from repro.checkers.findings import Finding
from repro.checkers.flow.project import ProjectFinding

#: Default baseline location, repo-root-relative.
DEFAULT_BASELINE_PATH = "flow-baseline.json"


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    function: str
    reason: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, os.path.normpath(self.path), self.function)


def load_baseline(path: str) -> List[BaselineEntry]:
    """Parse a baseline file; raises ValueError on malformed entries."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    entries = data["entries"] if isinstance(data, dict) else data
    loaded: List[BaselineEntry] = []
    for index, item in enumerate(entries):
        try:
            entry = BaselineEntry(
                rule=item["rule"],
                path=item["path"],
                function=item["function"],
                reason=item["reason"],
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"baseline entry #{index} is malformed: {exc}"
            ) from exc
        if not entry.reason.strip():
            raise ValueError(
                f"baseline entry #{index} ({entry.rule} at {entry.path}) "
                "has an empty reason; every accepted finding needs one"
            )
        loaded.append(entry)
    return loaded


def apply_baseline(
    findings: List[ProjectFinding], entries: List[BaselineEntry]
) -> Tuple[List[ProjectFinding], List[Finding]]:
    """Split findings into (kept, []) and report stale baseline entries.

    Returns ``(unbaselined_findings, stale_entry_findings)``.
    """
    by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
        e.key: e for e in entries
    }
    used = set()
    kept: List[ProjectFinding] = []
    for pf in findings:
        key = (
            pf.finding.rule_id,
            os.path.normpath(pf.finding.path),
            f"{pf.module}.{pf.function}" if pf.module else pf.function,
        )
        if key in by_key:
            used.add(key)
            continue
        kept.append(pf)
    stale: List[Finding] = []
    for entry in entries:
        if entry.key in used:
            continue
        stale.append(
            Finding(
                path=entry.path,
                line=1,
                col=1,
                rule_id="BASELINE",
                message=(
                    f"stale baseline entry: {entry.rule} in "
                    f"{entry.function} no longer fires"
                ),
                hint="delete the entry from the baseline file",
            )
        )
    return kept, stale
