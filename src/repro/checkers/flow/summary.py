"""Per-module effect summaries: one AST pass, JSON-serialisable output.

A :class:`ModuleSummary` captures everything the project-wide rules need
from one file — functions with their call sites, attribute writes,
return values, tracer guards, zero-probability guards, and inlined-RNG
fingerprint sites — as descriptor trees (see
:mod:`repro.checkers.flow.descriptors`).  Because the summary depends
only on the file's own text, it caches by content hash: the whole-
program link/fixpoint in :mod:`repro.checkers.flow.project` is then
cheap enough to rerun from cached summaries on every tier-1 invocation.

Bump :data:`SUMMARY_VERSION` whenever the extraction changes shape; the
cache keys on it.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.checkers.flow.descriptors import (
    OPAQUE,
    SELF,
    Desc,
    eval_expr,
    from_json,
    to_json,
    walk_shallow,
)
from repro.checkers.flow.fingerprint import ReplicaMatcher, ReplicaSite
from repro.checkers.suppress import (
    collect_file_suppressions,
    collect_suppressions,
)

#: Cache format version; bump on any change to extraction or descriptors.
SUMMARY_VERSION = 1

#: Type descriptors derived from annotations:
#: ``("cls", dotted) | ("optional", t) | ("dict", k, v) | ("list", t) |
#: ("set", t) | None`` (unmodelled).
TypeDesc = Optional[Tuple[Any, ...]]


@dataclasses.dataclass
class CallSite:
    """One call expression inside a function."""

    line: int
    col: int
    callee: Desc
    args: Tuple[Desc, ...]
    kwargs: Tuple[Tuple[str, Desc], ...]
    order: int
    #: "expr" (statement expression), "with" (context-manager item), or
    #: "value" (result feeds an expression/assignment).
    role: str
    #: Line of the innermost enclosing tracer-looking guard, if any.
    tguard: Optional[int] = None

    def to_json(self) -> List[Any]:
        return [
            self.line,
            self.col,
            to_json(self.callee),
            to_json(self.args),
            to_json(self.kwargs),
            self.order,
            self.role,
            self.tguard,
        ]

    @classmethod
    def from_json(cls, data: List[Any]) -> "CallSite":
        return cls(
            line=data[0],
            col=data[1],
            callee=from_json(data[2]),
            args=from_json(data[3]),
            kwargs=from_json(data[4]),
            order=data[5],
            role=data[6],
            tguard=data[7],
        )


@dataclasses.dataclass
class AttrWrite:
    """One attribute store: plain, augmented, subscript, or via alias."""

    line: int
    col: int
    attr: str
    recv: Desc
    kind: str  # "assign" | "aug" | "subscript" | "subscript-aug"
    value: Optional[Desc] = None  # only for kind == "assign"

    def to_json(self) -> List[Any]:
        return [
            self.line,
            self.col,
            self.attr,
            to_json(self.recv),
            self.kind,
            to_json(self.value) if self.value is not None else None,
        ]

    @classmethod
    def from_json(cls, data: List[Any]) -> "AttrWrite":
        return cls(
            line=data[0],
            col=data[1],
            attr=data[2],
            recv=from_json(data[3]),
            kind=data[4],
            value=from_json(data[5]) if data[5] is not None else None,
        )


@dataclasses.dataclass
class GuardInfo:
    """One ``if`` whose test might be a tracer-enabled guard."""

    line: int
    test: Desc
    has_else: bool
    else_callees: Tuple[Desc, ...]

    def to_json(self) -> List[Any]:
        return [self.line, to_json(self.test), self.has_else,
                to_json(self.else_callees)]

    @classmethod
    def from_json(cls, data: List[Any]) -> "GuardInfo":
        return cls(
            line=data[0],
            test=from_json(data[1]),
            has_else=data[2],
            else_callees=from_json(data[3]),
        )


@dataclasses.dataclass
class FuncSummary:
    """Effect summary of one function, method, or lambda."""

    qual: str
    lineno: int
    params: Tuple[str, ...]
    param_ann: Dict[str, TypeDesc]
    return_ann: TypeDesc
    kind: str  # "function" | "method" | "staticmethod" | "classmethod"
    cls: Optional[str]  # owning class's local name, if a method
    decorators: Tuple[str, ...]
    calls: List[CallSite] = dataclasses.field(default_factory=list)
    attr_writes: List[AttrWrite] = dataclasses.field(default_factory=list)
    returns: List[Tuple[int, Desc]] = dataclasses.field(default_factory=list)
    guards: List[GuardInfo] = dataclasses.field(default_factory=list)
    #: ``(order, line, attr)`` for ``if <attr>_prob <= 0: return`` guards.
    prob_guards: List[Tuple[int, int, str]] = dataclasses.field(
        default_factory=list
    )
    replica_sites: List[ReplicaSite] = dataclasses.field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "qual": self.qual,
            "lineno": self.lineno,
            "params": list(self.params),
            "param_ann": {
                k: to_json(v) for k, v in self.param_ann.items() if v
            },
            "return_ann": to_json(self.return_ann) if self.return_ann else None,
            "kind": self.kind,
            "cls": self.cls,
            "decorators": list(self.decorators),
            "calls": [c.to_json() for c in self.calls],
            "attr_writes": [w.to_json() for w in self.attr_writes],
            "returns": [[ln, to_json(d)] for ln, d in self.returns],
            "guards": [g.to_json() for g in self.guards],
            "prob_guards": [list(p) for p in self.prob_guards],
            "replica_sites": [s.to_json() for s in self.replica_sites],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FuncSummary":
        return cls(
            qual=data["qual"],
            lineno=data["lineno"],
            params=tuple(data["params"]),
            param_ann={k: from_json(v) for k, v in data["param_ann"].items()},
            return_ann=(
                from_json(data["return_ann"]) if data["return_ann"] else None
            ),
            kind=data["kind"],
            cls=data["cls"],
            decorators=tuple(data["decorators"]),
            calls=[CallSite.from_json(c) for c in data["calls"]],
            attr_writes=[AttrWrite.from_json(w) for w in data["attr_writes"]],
            returns=[(ln, from_json(d)) for ln, d in data["returns"]],
            guards=[GuardInfo.from_json(g) for g in data["guards"]],
            prob_guards=[tuple(p) for p in data["prob_guards"]],
            replica_sites=[
                ReplicaSite.from_json(s) for s in data["replica_sites"]
            ],
        )


@dataclasses.dataclass
class ClassSummary:
    """One class: bases, methods, and attribute type annotations."""

    name: str
    lineno: int
    bases: Tuple[Desc, ...]
    methods: Dict[str, str]  # method name -> function qual
    attr_ann: Dict[str, TypeDesc]
    properties: Dict[str, TypeDesc]  # @property name -> return type

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "bases": to_json(self.bases),
            "methods": self.methods,
            "attr_ann": {k: to_json(v) for k, v in self.attr_ann.items() if v},
            "properties": {
                k: to_json(v) if v else None
                for k, v in self.properties.items()
            },
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ClassSummary":
        return cls(
            name=data["name"],
            lineno=data["lineno"],
            bases=from_json(data["bases"]),
            methods=dict(data["methods"]),
            attr_ann={k: from_json(v) for k, v in data["attr_ann"].items()},
            properties={
                k: from_json(v) if v else None
                for k, v in data["properties"].items()
            },
        )


@dataclasses.dataclass
class ModuleSummary:
    """Everything the project link needs from one module."""

    module: str
    path: str
    imports: Dict[str, str]
    functions: Dict[str, FuncSummary]
    classes: Dict[str, ClassSummary]
    module_assigns: Dict[str, Desc]
    #: line -> suppressed rule ids (["*"] for a bare noqa).
    suppressions: Dict[int, List[str]]
    #: rule ids (or "*") suppressed for the whole file via noqa-file.
    file_suppressions: List[str]
    parse_error: Optional[Tuple[int, int, str]] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "module": self.module,
            "path": self.path,
            "imports": self.imports,
            "functions": {
                k: f.to_json() for k, f in self.functions.items()
            },
            "classes": {k: c.to_json() for k, c in self.classes.items()},
            "module_assigns": {
                k: to_json(d) for k, d in self.module_assigns.items()
            },
            "suppressions": {
                str(k): v for k, v in self.suppressions.items()
            },
            "file_suppressions": self.file_suppressions,
            "parse_error": (
                list(self.parse_error) if self.parse_error else None
            ),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=data["module"],
            path=data["path"],
            imports=dict(data["imports"]),
            functions={
                k: FuncSummary.from_json(f)
                for k, f in data["functions"].items()
            },
            classes={
                k: ClassSummary.from_json(c)
                for k, c in data["classes"].items()
            },
            module_assigns={
                k: from_json(d) for k, d in data["module_assigns"].items()
            },
            suppressions={
                int(k): list(v) for k, v in data["suppressions"].items()
            },
            file_suppressions=list(data["file_suppressions"]),
            parse_error=(
                tuple(data["parse_error"]) if data["parse_error"] else None
            ),
        )


# ---------------------------------------------------------------------------
# Annotation -> TypeDesc
# ---------------------------------------------------------------------------

_SCALARS = frozenset({"int", "float", "str", "bool", "bytes", "object", "Any"})
_LISTY = frozenset({"List", "list", "Sequence", "Iterable", "Iterator",
                    "FrozenSet", "frozenset", "Tuple", "tuple"})
_SETTY = frozenset({"Set", "set"})
_DICTY = frozenset({"Dict", "dict", "Mapping", "MutableMapping"})


def _ann_to_type(
    node: Optional[ast.AST],
    imports: Dict[str, str],
    module: str,
    local_classes: Sequence[str],
) -> TypeDesc:
    """Resolve an annotation expression to a type descriptor."""
    if node is None:
        return None
    if isinstance(node, ast.Constant):
        if node.value is None:
            return None
        if isinstance(node.value, str):  # string annotation
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
            return _ann_to_type(parsed, imports, module, local_classes)
        return None
    if isinstance(node, ast.Name):
        name = node.id
        if name in _SCALARS:
            return None
        if name in local_classes:
            return ("cls", f"{module}.{name}" if module else name)
        target = imports.get(name)
        if target is not None:
            return ("cls", target)
        return None
    if isinstance(node, ast.Attribute):
        parts: List[str] = [node.attr]
        value: ast.AST = node.value
        while isinstance(value, ast.Attribute):
            parts.append(value.attr)
            value = value.value
        if not isinstance(value, ast.Name):
            return None
        base = imports.get(value.id, value.id)
        return ("cls", ".".join([base] + parts[::-1]))
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = None
        if isinstance(head, ast.Name):
            head_name = head.id
        elif isinstance(head, ast.Attribute):
            head_name = head.attr
        if head_name is None:
            return None
        slc = node.slice
        elts = list(slc.elts) if isinstance(slc, ast.Tuple) else [slc]

        def sub(i: int) -> TypeDesc:
            if i >= len(elts):
                return None
            return _ann_to_type(elts[i], imports, module, local_classes)

        if head_name == "Optional":
            return ("optional", sub(0))
        if head_name == "Union":
            inner = [s for s in (sub(i) for i in range(len(elts))) if s]
            return inner[0] if len(inner) == 1 else None
        if head_name in _DICTY:
            return ("dict", sub(0), sub(1))
        if head_name in _SETTY:
            return ("set", sub(0))
        if head_name in _LISTY:
            return ("list", sub(0))
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # ``X | None`` style unions.
        left = _ann_to_type(node.left, imports, module, local_classes)
        right = _ann_to_type(node.right, imports, module, local_classes)
        if left and not right:
            return ("optional", left)
        if right and not left:
            return ("optional", right)
        return None
    return None


# ---------------------------------------------------------------------------
# The extraction pass
# ---------------------------------------------------------------------------

_TRACE_HINT = "trace"


def _test_looks_tracerish(test: ast.AST, env: Dict[str, Desc]) -> bool:
    """Cheap syntactic filter: could this ``if`` test be a tracer guard?

    The project link makes the final call by resolving the test
    descriptor; this filter just bounds how many guards get recorded.
    """
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute):
            if node.attr == "enabled" or _TRACE_HINT in node.attr:
                return True
        elif isinstance(node, ast.Name):
            if _TRACE_HINT in node.id:
                return True
            bound = env.get(node.id)
            if (
                isinstance(bound, tuple)
                and len(bound) == 3
                and bound[0] == "getattr"
                and bound[2] == "enabled"
            ):
                return True
    return False


def _prob_guard_attr(test: ast.AST) -> Optional[str]:
    """The ``*_prob`` attribute compared against zero, if this test has one."""
    for node in ast.walk(test):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        sides = [node.left, node.comparators[0]]
        attr = None
        zeroish = False
        for side in sides:
            if isinstance(side, ast.Attribute) and side.attr.endswith("_prob"):
                attr = side.attr
            elif isinstance(side, ast.Constant) and side.value in (0, 0.0):
                zeroish = True
        if attr and zeroish and isinstance(node.ops[0], (ast.LtE, ast.Lt, ast.Eq)):
            return attr
    return None


class _FunctionWalker:
    """Walks one function body, building its :class:`FuncSummary`."""

    def __init__(
        self,
        builder: "_ModuleBuilder",
        summary: FuncSummary,
        node: ast.AST,
        env: Dict[str, Desc],
    ) -> None:
        self.builder = builder
        self.summary = summary
        self.env = env
        self.order = 0
        self.tguard_stack: List[int] = []
        self.matcher = ReplicaMatcher(node, builder.imports)

    # -- statement walk --------------------------------------------------

    def walk_body(self, stmts: List[ast.stmt]) -> None:
        for index, stmt in enumerate(stmts):
            self.matcher.try_gauss_window(stmts, index, self.env)
            if isinstance(stmt, ast.While):
                self.matcher.try_choice_loop(stmts, index, self.env)
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        self.order += 1
        if isinstance(stmt, ast.Assign):
            value_desc = self._visit_expr(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, value_desc, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            value_desc = (
                self._visit_expr(stmt.value) if stmt.value is not None else OPAQUE
            )
            self._record_ann(stmt)
            self._bind_target(stmt.target, value_desc, stmt, aug=False)
        elif isinstance(stmt, ast.AugAssign):
            self._visit_expr(stmt.value)
            self._bind_target(stmt.target, OPAQUE, stmt, aug=True)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                desc = self._visit_expr(stmt.value)
                self.summary.returns.append((stmt.lineno, desc))
        elif isinstance(stmt, ast.Expr):
            self._visit_expr(stmt.value, role="expr")
        elif isinstance(stmt, ast.If):
            self._walk_if(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_desc = self._visit_expr(stmt.iter)
            self._bind_loop_target(stmt.target, iter_desc)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._visit_expr(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._visit_expr(item.context_expr, role="with")
                if item.optional_vars is not None:
                    self._bind_loop_target(item.optional_vars, OPAQUE)
            self.walk_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.walk_body(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = OPAQUE
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            self.walk_body(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.builder.add_function(
                stmt, cls=None, qual_prefix=self.summary.qual,
                closure_env=dict(self.env),
            )
            self.env[stmt.name] = (
                "localfunc", f"{self.summary.qual}.{stmt.name}"
            )
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._visit_expr(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            # Function-local imports resolve like module-level ones; the
            # widened module import map is a safe over-approximation.
            self.builder.record_import(stmt)
        # Pass/Break/Continue/Global/Nonlocal: nothing to record.

    def _walk_if(self, stmt: ast.If) -> None:
        self._visit_expr(stmt.test)
        prob_attr = _prob_guard_attr(stmt.test)
        if prob_attr and stmt.body and isinstance(
            stmt.body[0], (ast.Return, ast.Raise)
        ):
            self.summary.prob_guards.append(
                (self.order, stmt.lineno, prob_attr)
            )
        tracerish = _test_looks_tracerish(stmt.test, self.env)
        if tracerish:
            else_callees: List[Desc] = []
            for node in stmt.orelse:
                for sub in walk_shallow(node):
                    if isinstance(sub, ast.Call):
                        else_callees.append(eval_expr(sub.func, self.env))
            self.summary.guards.append(
                GuardInfo(
                    line=stmt.lineno,
                    test=eval_expr(stmt.test, self.env),
                    has_else=bool(stmt.orelse),
                    else_callees=tuple(else_callees),
                )
            )
            self.tguard_stack.append(stmt.lineno)
            self.walk_body(stmt.body)
            self.tguard_stack.pop()
            self.walk_body(stmt.orelse)
        else:
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)

    # -- bindings and writes ---------------------------------------------

    def _bind_target(
        self,
        target: ast.AST,
        value_desc: Desc,
        stmt: ast.stmt,
        aug: bool = False,
    ) -> None:
        if isinstance(target, ast.Name):
            if aug:
                self.env[target.id] = OPAQUE
            else:
                self.env[target.id] = value_desc
        elif isinstance(target, ast.Attribute):
            recv = eval_expr(target.value, self.env)
            self.summary.attr_writes.append(
                AttrWrite(
                    line=target.lineno,
                    col=target.col_offset + 1,
                    attr=target.attr,
                    recv=recv,
                    kind="aug" if aug else "assign",
                    value=None if aug else value_desc,
                )
            )
        elif isinstance(target, ast.Subscript):
            self._record_subscript_write(target, aug)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, OPAQUE, stmt, aug=aug)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, OPAQUE, stmt, aug=aug)

    def _record_subscript_write(self, target: ast.Subscript, aug: bool) -> None:
        """``X.attr[i] = v`` or ``alias[i] = v`` where alias binds X.attr."""
        base = target.value
        attr: Optional[str] = None
        recv: Desc = OPAQUE
        if isinstance(base, ast.Attribute):
            attr = base.attr
            recv = eval_expr(base.value, self.env)
        elif isinstance(base, ast.Name):
            bound = self.env.get(base.id)
            if isinstance(bound, tuple) and bound:
                if bound[0] == "selfattr":
                    attr, recv = bound[1], SELF
                elif bound[0] == "getattr":
                    attr, recv = bound[2], bound[1]
        if attr is not None:
            self.summary.attr_writes.append(
                AttrWrite(
                    line=target.lineno,
                    col=target.col_offset + 1,
                    attr=attr,
                    recv=recv,
                    kind="subscript-aug" if aug else "subscript",
                )
            )
        self._visit_expr(target.slice)

    def _bind_loop_target(self, target: ast.AST, iter_desc: Desc) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = (
                ("iter", iter_desc) if iter_desc != OPAQUE else OPAQUE
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_loop_target(elt, OPAQUE)

    def _record_ann(self, stmt: ast.AnnAssign) -> None:
        """``self.x: T = ...`` contributes to the owning class's attr types."""
        target = stmt.target
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and self.summary.cls is not None
            and self.env.get(target.value.id) == SELF
        ):
            type_desc = self.builder.resolve_ann(stmt.annotation)
            if type_desc is not None:
                cls = self.builder.classes.get(self.summary.cls)
                if cls is not None and target.attr not in cls.attr_ann:
                    cls.attr_ann[target.attr] = type_desc

    # -- expressions -----------------------------------------------------

    def _visit_expr(self, node: ast.AST, role: str = "value") -> Desc:
        """Record every call in ``node``, then return its descriptor."""
        self._scan_calls(node, role)
        return eval_expr(node, self.env)

    def _scan_calls(self, node: ast.AST, role: str) -> None:
        for sub in walk_shallow(node):
            if isinstance(sub, ast.Call):
                # ``role`` applies only to the outermost expression.
                call_role = role if sub is node else "value"
                self.summary.calls.append(
                    CallSite(
                        line=sub.lineno,
                        col=sub.col_offset + 1,
                        callee=eval_expr(sub.func, self.env),
                        args=tuple(
                            eval_expr(a, self.env)
                            for a in sub.args[:8]
                            if not isinstance(a, ast.Starred)
                        ),
                        kwargs=tuple(
                            (kw.arg, eval_expr(kw.value, self.env))
                            for kw in sub.keywords
                            if kw.arg is not None
                        ),
                        order=self.order,
                        role=call_role,
                        tguard=(
                            self.tguard_stack[-1]
                            if self.tguard_stack
                            else None
                        ),
                    )
                )
            elif isinstance(sub, ast.Lambda):
                qual = f"{self.summary.qual}.<lambda:{sub.lineno}>"
                self.builder.add_lambda(sub, qual, dict(self.env))


class _ModuleBuilder:
    """Builds a :class:`ModuleSummary` from a parsed module."""

    def __init__(self, module: str, path: str) -> None:
        self.module = module
        self.path = path
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FuncSummary] = {}
        self.classes: Dict[str, ClassSummary] = {}
        self.module_assigns: Dict[str, Desc] = {}
        self.class_names: List[str] = []

    # -- annotation helper ----------------------------------------------

    def resolve_ann(self, node: Optional[ast.AST]) -> TypeDesc:
        return _ann_to_type(node, self.imports, self.module, self.class_names)

    # -- top level --------------------------------------------------------

    def build(self, tree: ast.Module) -> None:
        # First pass: imports and class names (annotations may forward-
        # reference classes defined later in the module).
        for stmt in tree.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self.record_import(stmt)
            elif isinstance(stmt, ast.ClassDef):
                self.class_names.append(stmt.name)
        # Second pass: definitions and module-level assignments.
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.add_function(stmt, cls=None, qual_prefix="")
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(stmt)
            elif isinstance(stmt, ast.Assign):
                desc = eval_expr(stmt.value, {})
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.module_assigns[target.id] = desc

    def record_import(self, stmt: ast.stmt) -> None:
        """Register an import's local bindings (module or function level)."""
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    self.imports[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds ``a``; attribute chains
                    # through it resolve dotted below that root.
                    root = alias.name.split(".")[0]
                    self.imports.setdefault(root, root)
        elif isinstance(stmt, ast.ImportFrom):
            base = self._import_base(stmt)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self.imports.setdefault(
                    local, f"{base}.{alias.name}" if base else alias.name
                )

    def _import_base(self, stmt: ast.ImportFrom) -> str:
        if stmt.level == 0:
            return stmt.module or ""
        # Relative import: resolve against this module's package.
        parts = self.module.split(".") if self.module else []
        # ``from . import x`` in a package __init__ behaves like the
        # module itself being the package; we only see plain modules, so
        # drop ``level`` trailing components.
        base_parts = parts[: len(parts) - stmt.level] if parts else []
        if stmt.module:
            base_parts.append(stmt.module)
        return ".".join(base_parts)

    def _add_class(self, node: ast.ClassDef) -> None:
        cls = ClassSummary(
            name=node.name,
            lineno=node.lineno,
            bases=tuple(eval_expr(b, {}) for b in node.bases),
            methods={},
            attr_ann={},
            properties={},
        )
        self.classes[node.name] = cls
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{node.name}.{stmt.name}"
                cls.methods[stmt.name] = qual
                decorators = _decorator_names(stmt)
                if "property" in decorators:
                    cls.properties[stmt.name] = self.resolve_ann(stmt.returns)
                self.add_function(stmt, cls=node.name, qual_prefix=node.name)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                type_desc = self.resolve_ann(stmt.annotation)
                if type_desc is not None:
                    cls.attr_ann[stmt.target.id] = type_desc

    # -- functions --------------------------------------------------------

    def add_function(
        self,
        node: ast.AST,
        cls: Optional[str],
        qual_prefix: str,
        closure_env: Optional[Dict[str, Desc]] = None,
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        decorators = _decorator_names(node)
        if cls is None:
            kind = "function"
        elif "staticmethod" in decorators:
            kind = "staticmethod"
        elif "classmethod" in decorators:
            kind = "classmethod"
        else:
            kind = "method"
        qual = f"{qual_prefix}.{node.name}" if qual_prefix else node.name
        arg_nodes = list(node.args.posonlyargs) + list(node.args.args)
        params = [a.arg for a in arg_nodes]
        if node.args.vararg:
            params.append(node.args.vararg.arg)
        kwonly = [a.arg for a in node.args.kwonlyargs]
        params.extend(kwonly)
        param_ann: Dict[str, TypeDesc] = {}
        for arg in arg_nodes + list(node.args.kwonlyargs):
            ann = self.resolve_ann(arg.annotation)
            if ann is not None:
                param_ann[arg.arg] = ann
        summary = FuncSummary(
            qual=qual,
            lineno=node.lineno,
            params=tuple(params),
            param_ann=param_ann,
            return_ann=self.resolve_ann(node.returns),
            kind=kind,
            cls=cls,
            decorators=tuple(decorators),
        )
        self.functions[qual] = summary
        env: Dict[str, Desc] = dict(closure_env or {})
        skip_first = kind in ("method", "classmethod") and params
        for position, name in enumerate(params):
            if position == 0 and skip_first:
                env[name] = SELF if kind == "method" else OPAQUE
            else:
                env[name] = ("param", name)
        walker = _FunctionWalker(self, summary, node, env)
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            walker._visit_expr(default)
        walker.walk_body(list(node.body))
        summary.replica_sites = walker.matcher.finish()

    def add_lambda(
        self, node: ast.Lambda, qual: str, closure_env: Dict[str, Desc]
    ) -> None:
        if qual in self.functions:
            return
        params = [a.arg for a in node.args.args]
        summary = FuncSummary(
            qual=qual,
            lineno=node.lineno,
            params=tuple(params),
            param_ann={},
            return_ann=None,
            kind="function",
            cls=None,
            decorators=("<lambda>",),
        )
        self.functions[qual] = summary
        env = dict(closure_env)
        for name in params:
            env[name] = ("param", name)
        walker = _FunctionWalker(self, summary, node, env)
        desc = walker._visit_expr(node.body)
        summary.returns.append((node.lineno, desc))
        summary.replica_sites = walker.matcher.finish()


def _decorator_names(node: ast.AST) -> List[str]:
    names: List[str] = []
    for dec in getattr(node, "decorator_list", []):
        target = dec
        if isinstance(target, ast.Call):
            target = target.func
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
    return names


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def summarize_source(
    source: str, path: str, module: Optional[str]
) -> ModuleSummary:
    """Extract the flow summary of one source string."""
    module_name = module or ""
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = getattr(exc, "offset", None) or 1
        msg = getattr(exc, "msg", None) or str(exc)
        return ModuleSummary(
            module=module_name,
            path=path,
            imports={},
            functions={},
            classes={},
            module_assigns={},
            suppressions={},
            file_suppressions=[],
            parse_error=(line, col, msg),
        )
    builder = _ModuleBuilder(module_name, path)
    builder.build(tree)
    raw_suppressions = collect_suppressions(source)
    return ModuleSummary(
        module=module_name,
        path=path,
        imports=builder.imports,
        functions=builder.functions,
        classes=builder.classes,
        module_assigns=builder.module_assigns,
        suppressions={
            line: sorted(rules) for line, rules in raw_suppressions.items()
        },
        file_suppressions=sorted(collect_file_suppressions(source)),
    )
