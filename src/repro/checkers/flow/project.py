"""Whole-program linking: symbol table, call graph, effect fixpoint.

:class:`ProjectContext` consumes one :class:`ModuleSummary` per file and
links them: classes resolve to dotted names with a linearised base-class
order, descriptors resolve to types via annotations and constructor
sites, and RNG attribution propagates along call edges and attribute
assignments to a fixpoint.  The FLOW/ENC/TRC rule packs then ask linked
questions — "which stream does this draw use?", "is this callee
transitively stochastic?", "is this receiver a tracer?" — without
touching an AST.

Soundness posture: the analysis is *conservative for the questions the
rules ask*.  A draw whose receiver cannot be proven attributed is
flagged (FLOW101 errs toward noise, quenched by the reviewed baseline);
an index write whose receiver type is unknown counts against the
sanctioned-mutator set; a call edge that cannot be resolved simply does
not propagate attribution (never invents it).
"""

from __future__ import annotations

import dataclasses
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Type,
)

from repro.checkers.findings import Finding
from repro.checkers.flow.descriptors import (
    DRAW_METHODS,
    OPAQUE,
    SELF,
    Desc,
    TRACER_METHODS,
)
from repro.checkers.flow.summary import (
    CallSite,
    FuncSummary,
    ModuleSummary,
    TypeDesc,
)

#: Dotted names the analysis treats specially.
RNG_CLASS = "random.Random"
STREAMS_CLASS = "repro.simulator.randomness.RngStreams"
TRACER_BASE = "repro.obs.tracer.Tracer"
METRICS_CLASS = "repro.obs.metrics.MetricsRegistry"

#: A function's identity: ``(module, qualname)``.
FuncKey = Tuple[str, str]

#: Maximum recursion depth for descriptor resolution.
_RESOLVE_DEPTH = 12
#: Fixpoint iteration cap (generous; the tree converges in < 10).
_MAX_ITERATIONS = 50


@dataclasses.dataclass
class LinkedClass:
    """One class after linking: resolved bases and attribute facts."""

    dotted: str
    module: str
    name: str
    lineno: int
    bases: List[str]  # resolved dotted names, in MRO-ish order
    methods: Dict[str, FuncKey]
    attr_types: Dict[str, TypeDesc]
    properties: Dict[str, TypeDesc]
    #: attribute -> value descriptors assigned to ``self.<attr>`` (with
    #: the assigning function, for fixpoint context).
    attr_values: Dict[str, List[Tuple[Desc, FuncKey]]] = dataclasses.field(
        default_factory=dict
    )


@dataclasses.dataclass
class DrawSite:
    """One classified stochastic draw."""

    func: FuncKey
    call: CallSite
    method: str
    tokens: FrozenSet[str]
    #: Attributed because the receiver is an annotated ``random.Random``
    #: parameter never bound inside the project (an external entry point).
    external: bool = False


@dataclasses.dataclass
class TracerCall:
    """One call of a tracer emission method."""

    func: FuncKey
    call: CallSite
    method: str


class ProjectContext:
    """The linked whole-program view the project rules run against."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        self.paths: Dict[str, str] = {}  # module -> path
        for summary in summaries:
            name = summary.module or summary.path
            self.modules[name] = summary
            self.paths[name] = summary.path

        self.classes: Dict[str, LinkedClass] = {}
        self.functions: Dict[FuncKey, FuncSummary] = {}
        self._tracer_classes: Set[str] = set()
        self._type_cache: Dict[Tuple[Any, ...], TypeDesc] = {}

        # Fixpoint state.
        self.param_rng: Dict[Tuple[FuncKey, str], Set[str]] = {}
        self.attr_rng: Dict[Tuple[str, str], Set[str]] = {}
        self.return_rng: Dict[FuncKey, Set[str]] = {}
        #: parameters that received at least one internal call binding.
        self.bound_params: Set[Tuple[FuncKey, str]] = set()
        #: call edges discovered while classifying: caller -> callees.
        self.edges: Dict[FuncKey, Set[FuncKey]] = {}

        # Classification results.
        self.draws: List[DrawSite] = []
        self.tracer_calls: List[TracerCall] = []
        self.transitive_draws: Set[FuncKey] = set()

        self._link()
        self._infer_attr_types()
        self._run_fixpoint()
        self._classify()

    # ------------------------------------------------------------------
    # Linking
    # ------------------------------------------------------------------

    def _link(self) -> None:
        for module, summary in self.modules.items():
            for qual, func in summary.functions.items():
                self.functions[(module, qual)] = func
            for name, cls in summary.classes.items():
                dotted = f"{module}.{name}" if module else name
                self.classes[dotted] = LinkedClass(
                    dotted=dotted,
                    module=module,
                    name=name,
                    lineno=cls.lineno,
                    bases=[],
                    methods={
                        m: (module, q) for m, q in cls.methods.items()
                    },
                    attr_types=dict(cls.attr_ann),
                    properties=dict(cls.properties),
                )
        # Resolve bases now that every class has a dotted name.
        for module, summary in self.modules.items():
            for name, cls in summary.classes.items():
                linked = self.classes[f"{module}.{name}" if module else name]
                for base in cls.bases:
                    resolved = self._resolve_name_target(module, base)
                    if resolved and resolved[0] == "class":
                        linked.bases.append(resolved[1])
        # Collect self-attribute assignment descriptors per class.
        for func_key, func in self.functions.items():
            if func.cls is None:
                continue
            module = func_key[0]
            dotted = f"{module}.{func.cls}" if module else func.cls
            linked = self.classes.get(dotted)
            if linked is None:
                continue
            for write in func.attr_writes:
                if write.kind == "assign" and write.recv == SELF:
                    linked.attr_values.setdefault(write.attr, []).append(
                        (write.value if write.value is not None else OPAQUE,
                         func_key)
                    )
        # Tracer classes: Tracer itself plus everything that inherits it.
        for dotted in self.classes:
            if TRACER_BASE in self.mro(dotted):
                self._tracer_classes.add(dotted)
        self._tracer_classes.add(TRACER_BASE)

    def mro(self, dotted: str) -> List[str]:
        """Linearised ancestor list (self first; simple C3-free DFS)."""
        seen: List[str] = []
        stack = [dotted]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.append(current)
            linked = self.classes.get(current)
            if linked is not None:
                stack.extend(linked.bases)
        return seen

    def find_method(self, dotted: str, name: str) -> Optional[FuncKey]:
        """Resolve a method through the class's ancestor chain."""
        for cls in self.mro(dotted):
            linked = self.classes.get(cls)
            if linked is not None and name in linked.methods:
                return linked.methods[name]
        return None

    def is_tracer_class(self, dotted: str) -> bool:
        return dotted in self._tracer_classes or dotted == METRICS_CLASS

    def _resolve_name_target(
        self, module: str, desc: Desc
    ) -> Optional[Tuple[str, Any]]:
        """Resolve a ``global``/``getattr``-rooted descriptor to a target.

        Returns ``("class", dotted)``, ``("func", funckey)``,
        ``("module", dotted)``, ``("value", (desc, module))`` for a
        module-level assignment, or ``None``.
        """
        if not isinstance(desc, tuple) or not desc:
            return None
        summary = self.modules.get(module)
        if desc[0] == "global":
            name = desc[1]
            if summary is not None:
                if name in summary.classes:
                    dotted = f"{module}.{name}" if module else name
                    return ("class", dotted)
                if name in summary.functions:
                    return ("func", (module, name))
                if name in summary.module_assigns:
                    return ("value", (summary.module_assigns[name], module))
                target = summary.imports.get(name)
                if target is not None:
                    return self._resolve_dotted(target)
            return None
        if desc[0] == "localfunc":
            return ("func", (module, desc[1]))
        if desc[0] == "getattr":
            base = self._resolve_name_target(module, desc[1])
            if base is None:
                return None
            if base[0] == "module":
                return self._resolve_dotted(f"{base[1]}.{desc[2]}")
            if base[0] == "class":
                # Nested attribute on a class object: a method reference.
                method = self.find_method(base[1], desc[2])
                if method is not None:
                    return ("func", method)
            return None
        return None

    def _resolve_dotted(self, dotted: str) -> Optional[Tuple[str, Any]]:
        """Resolve a dotted path to a class, function, or module."""
        if dotted in self.classes:
            return ("class", dotted)
        if dotted in self.modules:
            return ("module", dotted)
        head, _, tail = dotted.rpartition(".")
        if head and head in self.modules and tail:
            summary = self.modules[head]
            if tail in summary.classes:
                return ("class", dotted)
            if tail in summary.functions:
                return ("func", (head, tail))
            if tail in summary.module_assigns:
                return ("value", (summary.module_assigns[tail], head))
            target = summary.imports.get(tail)
            if target is not None and target != dotted:
                return self._resolve_dotted(target)
        if dotted == RNG_CLASS or dotted == "random":
            return ("class", RNG_CLASS) if dotted == RNG_CLASS else (
                "module", "random"
            )
        return ("module", dotted) if "." not in dotted else None

    # ------------------------------------------------------------------
    # Type resolution
    # ------------------------------------------------------------------

    def owner_class(self, func_key: FuncKey) -> Optional[str]:
        func = self.functions.get(func_key)
        if func is None or func.cls is None:
            return None
        module = func_key[0]
        return f"{module}.{func.cls}" if module else func.cls

    def resolve_type(
        self, desc: Desc, func_key: Optional[FuncKey], depth: int = 0
    ) -> TypeDesc:
        """Best-effort type of a descriptor in the context of a function."""
        if depth > _RESOLVE_DEPTH or not isinstance(desc, tuple) or not desc:
            return None
        cache_key = (desc, func_key)
        if cache_key in self._type_cache:
            return self._type_cache[cache_key]
        self._type_cache[cache_key] = None  # cycle guard
        result = self._resolve_type_inner(desc, func_key, depth)
        self._type_cache[cache_key] = result
        return result

    def _resolve_type_inner(
        self, desc: Desc, func_key: Optional[FuncKey], depth: int
    ) -> TypeDesc:
        tag = desc[0]
        module = func_key[0] if func_key else ""
        if tag == "self":
            owner = self.owner_class(func_key) if func_key else None
            return ("cls", owner) if owner else None
        if tag == "param":
            func = self.functions.get(func_key) if func_key else None
            if func is not None:
                return func.param_ann.get(desc[1])
            return None
        if tag == "selfattr":
            owner = self.owner_class(func_key) if func_key else None
            if owner is None:
                return None
            return self._attr_type(owner, desc[1])
        if tag == "getattr":
            base = self.resolve_type(desc[1], func_key, depth + 1)
            if base is not None and base[0] == "optional":
                base = base[1]
            if base is not None and base[0] == "cls":
                return self._attr_type(base[1], desc[2])
            # A module attribute: ``random.Random`` etc.
            target = self._resolve_name_target(module, desc)
            if target is not None and target[0] == "class":
                return None  # a class object, not an instance
            return None
        if tag == "global":
            target = self._resolve_name_target(module, desc)
            if target is not None and target[0] == "value":
                value_desc, value_module = target[1]
                return self.resolve_type(
                    value_desc, (value_module, "<module>"), depth + 1
                )
            return None
        if tag == "call":
            return self._call_result_type(desc, func_key, depth)
        if tag == "sub":
            base = self.resolve_type(desc[1], func_key, depth + 1)
            if base is not None and base[0] == "optional":
                base = base[1]
            if base is not None and base[0] == "dict":
                return base[2]
            if base is not None and base[0] in ("list", "set"):
                return base[1]
            return None
        if tag == "iter":
            base = self.resolve_type(desc[1], func_key, depth + 1)
            if base is not None and base[0] == "optional":
                base = base[1]
            if base is not None and base[0] in ("list", "set"):
                return base[1]
            if base is not None and base[0] == "dict":
                return base[1]
            return None
        if tag == "union":
            resolved = []
            for branch in desc[1]:
                r = self.resolve_type(branch, func_key, depth + 1)
                if r is not None and r[0] == "optional":
                    r = r[1]  # Optional[T] vs T branches agree on T
                resolved.append(r)
            non_null = [r for r in resolved if r is not None]
            if non_null and all(r == non_null[0] for r in non_null):
                return non_null[0]
            return None
        return None

    def _attr_type(self, dotted: str, attr: str) -> TypeDesc:
        """Type of ``<dotted instance>.<attr>`` via the ancestor chain."""
        if dotted == STREAMS_CLASS:
            return None
        for cls in self.mro(dotted):
            linked = self.classes.get(cls)
            if linked is None:
                continue
            if attr in linked.attr_types:
                return linked.attr_types[attr]
            if attr in linked.properties:
                return linked.properties[attr]
        return None

    def _call_result_type(
        self, desc: Desc, func_key: Optional[FuncKey], depth: int
    ) -> TypeDesc:
        callee = desc[1]
        module = func_key[0] if func_key else ""
        # Method calls.
        if isinstance(callee, tuple) and callee:
            if callee[0] in ("getattr", "selfattr"):
                recv, name = (
                    (callee[1], callee[2])
                    if callee[0] == "getattr"
                    else (SELF, callee[1])
                )
                recv_type = self.resolve_type(recv, func_key, depth + 1)
                if recv_type is not None and recv_type[0] == "optional":
                    recv_type = recv_type[1]
                if recv_type is not None and recv_type[0] == "cls":
                    dotted = recv_type[1]
                    if dotted == STREAMS_CLASS:
                        if name == "get":
                            return ("cls", RNG_CLASS)
                        if name == "spawn":
                            return ("cls", STREAMS_CLASS)
                    method = self.find_method(dotted, name)
                    if method is not None:
                        return self.functions[method].return_ann
                    return None
                if recv_type is not None and recv_type[0] == "dict":
                    if name == "get":
                        return recv_type[2]
                    if name == "values":
                        return ("list", recv_type[2])
                    if name == "keys":
                        return ("list", recv_type[1])
                if recv_type is not None and recv_type[0] in ("list", "set"):
                    if name in ("pop", "copy"):
                        return (
                            recv_type[1] if name == "pop" else recv_type
                        )
                return None
            target = self._resolve_name_target(module, callee)
            if target is not None:
                if target[0] == "class":
                    return ("cls", target[1])
                if target[0] == "func":
                    func = self.functions.get(target[1])
                    return func.return_ann if func else None
            # Builtins that preserve element types.
            if callee == ("global", "list") or callee == ("global", "sorted"):
                if len(desc) > 2 and desc[2]:
                    inner = self.resolve_type(desc[2][0], func_key, depth + 1)
                    if inner is not None and inner[0] in ("list", "set"):
                        return ("list", inner[1])
                return None
        return None

    # ------------------------------------------------------------------
    # Attribute type inference from constructor assignments
    # ------------------------------------------------------------------

    def _infer_attr_types(self) -> None:
        """Fill unannotated attribute types from ``self.x = ...`` sites.

        Two passes so one inferred attribute can feed another
        (``self.a = Cls(); self.b = self.a``).
        """
        for _ in range(2):
            changed = False
            for linked in self.classes.values():
                for attr, values in linked.attr_values.items():
                    if attr in linked.attr_types:
                        continue
                    inferred: List[TypeDesc] = []
                    for value_desc, func_key in values:
                        self._type_cache.clear()
                        resolved = self.resolve_type(value_desc, func_key)
                        if resolved is not None:
                            inferred.append(resolved)
                    if inferred and all(i == inferred[0] for i in inferred):
                        linked.attr_types[attr] = inferred[0]
                        changed = True
            self._type_cache.clear()
            if not changed:
                break

    # ------------------------------------------------------------------
    # RNG attribution fixpoint
    # ------------------------------------------------------------------

    def resolve_rng(
        self, desc: Desc, func_key: Optional[FuncKey], depth: int = 0
    ) -> Set[str]:
        """Attribution tokens a descriptor's value may carry."""
        if depth > _RESOLVE_DEPTH or not isinstance(desc, tuple) or not desc:
            return set()
        tag = desc[0]
        module = func_key[0] if func_key else ""
        if tag == "param":
            if func_key is None:
                return set()
            return set(self.param_rng.get((func_key, desc[1]), ()))
        if tag == "selfattr":
            owner = self.owner_class(func_key) if func_key else None
            if owner is None:
                return set()
            return self._attr_rng(owner, desc[1])
        if tag == "getattr":
            recv_type = self.resolve_type(desc[1], func_key)
            if recv_type is not None and recv_type[0] == "optional":
                recv_type = recv_type[1]
            if recv_type is not None and recv_type[0] == "cls":
                return self._attr_rng(recv_type[1], desc[2])
            return set()
        if tag == "global":
            target = self._resolve_name_target(module, desc)
            if target is not None and target[0] == "value":
                value_desc, value_module = target[1]
                return self.resolve_rng(
                    value_desc, (value_module, "<module>"), depth + 1
                )
            return set()
        if tag == "union":
            tokens: Set[str] = set()
            for branch in desc[1]:
                tokens |= self.resolve_rng(branch, func_key, depth + 1)
            return tokens
        if tag == "call":
            return self._call_result_rng(desc, func_key, depth)
        return set()

    def _attr_rng(self, dotted: str, attr: str) -> Set[str]:
        tokens: Set[str] = set()
        for cls in self.mro(dotted):
            tokens |= self.attr_rng.get((cls, attr), set())
        return tokens

    def _call_result_rng(
        self, desc: Desc, func_key: Optional[FuncKey], depth: int
    ) -> Set[str]:
        callee, args = desc[1], desc[2]
        line = desc[4] if len(desc) > 4 else 0
        module = func_key[0] if func_key else ""
        if isinstance(callee, tuple) and callee and callee[0] == "getattr":
            recv, name = callee[1], callee[2]
            recv_type = self.resolve_type(recv, func_key)
            if recv_type == ("cls", STREAMS_CLASS) and name == "get":
                if args and args[0][0] == "const" and isinstance(
                    args[0][1], str
                ):
                    return {f"stream:{args[0][1]}"}
                return {"stream:<dynamic>"}
        target = self._resolve_call_target(desc, func_key)
        if target is not None:
            kind, payload = target
            if kind == "class":
                if payload == RNG_CLASS:
                    if args or desc[3]:
                        return {f"seeded:{module}:{line}"}
                    return set()
                init = self.find_method(payload, "__init__")
                if init is not None:
                    # Constructors do not *return* an RNG.
                    return set()
                return set()
            if kind == "func":
                return set(self.return_rng.get(payload, ()))
        return set()

    def _resolve_call_target(
        self, call_desc: Desc, func_key: Optional[FuncKey]
    ) -> Optional[Tuple[str, Any]]:
        """Resolve a ``("call", ...)`` descriptor's callee.

        Returns ``("class", dotted)`` for constructors or
        ``("func", funckey)`` for project functions/methods.
        """
        callee = call_desc[1]
        if not isinstance(callee, tuple) or not callee:
            return None
        module = func_key[0] if func_key else ""
        if callee[0] == "selfattr":
            owner = self.owner_class(func_key) if func_key else None
            if owner is not None:
                method = self.find_method(owner, callee[1])
                if method is not None:
                    return ("func", method)
            return None
        if callee[0] == "getattr":
            recv_type = self.resolve_type(callee[1], func_key)
            if recv_type is not None and recv_type[0] == "optional":
                recv_type = recv_type[1]
            if recv_type is not None and recv_type[0] == "cls":
                method = self.find_method(recv_type[1], callee[2])
                if method is not None:
                    return ("func", method)
                return None
            target = self._resolve_name_target(module, callee)
            if target is not None and target[0] in ("class", "func"):
                return target
            return None
        if callee[0] in ("global", "localfunc"):
            target = self._resolve_name_target(module, callee)
            if target is not None and target[0] in ("class", "func"):
                return target
            if (
                target is not None
                and target[0] == "module"
                and target[1] == "random"
            ):
                return None
            # ``random.Random`` imported directly.
            if callee[0] == "global":
                summary = self.modules.get(module)
                if summary is not None:
                    dotted = summary.imports.get(callee[1])
                    if dotted == RNG_CLASS:
                        return ("class", RNG_CLASS)
            return None
        if callee[0] == "call":
            # Calling a call result: type it and look for __call__? Out
            # of scope; the draw classifier handles rng-typed results.
            return None
        return None

    def _method_overrides(self, callee_key: FuncKey) -> List[FuncKey]:
        """Subclass implementations of an abstract method (virtual dispatch).

        A call resolved to an ``@abstractmethod`` stub never executes the
        stub at runtime — it dispatches to whichever concrete override
        the receiver carries.  Binding the stub alone would strand every
        argument at a body-less function (RNG tokens would never reach
        the implementations' parameters), so the stub's bindings are
        mirrored onto every override in the linked project.
        """
        callee = self.functions.get(callee_key)
        if callee is None or "abstractmethod" not in callee.decorators:
            return []
        owner = self.owner_class(callee_key)
        if owner is None:
            return []
        name = callee.qual.rsplit(".", 1)[-1]
        overrides: List[FuncKey] = []
        for dotted in sorted(self.classes):
            if dotted == owner or owner not in self.mro(dotted):
                continue
            method = self.find_method(dotted, name)
            if (
                method is not None
                and method != callee_key
                and method not in overrides
            ):
                overrides.append(method)
        return overrides

    def _iter_call_bindings(
        self, func_key: FuncKey, call: CallSite
    ) -> Iterator[Tuple[FuncKey, str, Desc]]:
        """Yield ``(callee, param, arg_desc)`` for a resolvable call."""
        call_desc = ("call", call.callee, call.args, call.kwargs, call.line)
        target = self._resolve_call_target(call_desc, func_key)
        callee_key: Optional[FuncKey] = None
        if target is not None and target[0] == "func":
            callee_key = target[1]
        elif target is not None and target[0] == "class":
            callee_key = self.find_method(target[1], "__init__")
        if callee_key is None:
            return
        for target_key in [callee_key, *self._method_overrides(callee_key)]:
            callee = self.functions.get(target_key)
            if callee is None:
                continue
            params = list(callee.params)
            if callee.kind in ("method", "classmethod") and params:
                params = params[1:]
            for position, arg in enumerate(call.args):
                if position < len(params):
                    yield target_key, params[position], arg
            for name, arg in call.kwargs:
                if name in callee.params:
                    yield target_key, name, arg

    def _run_fixpoint(self) -> None:
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for func_key, func in self.functions.items():
                for call in func.calls:
                    for callee_key, param, arg in self._iter_call_bindings(
                        func_key, call
                    ):
                        self.bound_params.add((callee_key, param))
                        tokens = self.resolve_rng(arg, func_key)
                        if tokens:
                            bucket = self.param_rng.setdefault(
                                (callee_key, param), set()
                            )
                            if not tokens <= bucket:
                                bucket |= tokens
                                changed = True
                for ln, ret_desc in func.returns:
                    tokens = self.resolve_rng(ret_desc, func_key)
                    if tokens:
                        bucket = self.return_rng.setdefault(func_key, set())
                        if not tokens <= bucket:
                            bucket |= tokens
                            changed = True
            for linked in self.classes.values():
                for attr, values in linked.attr_values.items():
                    for value_desc, func_key in values:
                        tokens = self.resolve_rng(value_desc, func_key)
                        if tokens:
                            bucket = self.attr_rng.setdefault(
                                (linked.dotted, attr), set()
                            )
                            if not tokens <= bucket:
                                bucket |= tokens
                                changed = True
            if not changed:
                break

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def is_tracerish(self, desc: Desc, func_key: Optional[FuncKey]) -> bool:
        """Is this receiver a tracer (by type, or failing that by name)?"""
        resolved = self.resolve_type(desc, func_key)
        if resolved is not None and resolved[0] == "optional":
            resolved = resolved[1]
        if resolved is not None and resolved[0] == "cls":
            return self.is_tracer_class(resolved[1])
        if not isinstance(desc, tuple) or not desc:
            return False
        tail = None
        if desc[0] in ("param", "selfattr", "global"):
            tail = desc[1]
        elif desc[0] == "getattr":
            tail = desc[2]
        if isinstance(tail, str):
            return "tracer" in tail.lower()
        return False

    def _classify(self) -> None:
        draw_owners: Set[FuncKey] = set()
        for func_key, func in self.functions.items():
            for call in func.calls:
                callee = call.callee
                if not isinstance(callee, tuple) or not callee:
                    continue
                method: Optional[str] = None
                recv: Optional[Desc] = None
                if callee[0] == "getattr":
                    recv, method = callee[1], callee[2]
                elif callee[0] == "selfattr":
                    recv, method = SELF, callee[1]
                elif callee[0] == "global":
                    # ``from random import choice`` style direct draws.
                    summary = self.modules.get(func_key[0])
                    dotted = (
                        summary.imports.get(callee[1]) if summary else None
                    )
                    if dotted and dotted.startswith("random."):
                        name = dotted.split(".", 1)[1]
                        if name in DRAW_METHODS:
                            recv, method = ("global", "random"), name

                # Emission first: a resolvable Tracer.event target is
                # still an emission site, not a plain call edge.
                if (
                    method is not None
                    and recv is not None
                    and method in TRACER_METHODS
                    and self.is_tracerish(recv, func_key)
                ):
                    self.tracer_calls.append(
                        TracerCall(func=func_key, call=call, method=method)
                    )
                    continue
                call_desc = (
                    "call", call.callee, call.args, call.kwargs, call.line
                )
                target = self._resolve_call_target(call_desc, func_key)
                if target is not None and target[0] == "func":
                    self.edges.setdefault(func_key, set()).add(target[1])
                    continue
                if target is not None and target[0] == "class":
                    init = self.find_method(target[1], "__init__")
                    if init is not None:
                        self.edges.setdefault(func_key, set()).add(init)
                    continue
                if method is None or recv is None:
                    continue
                if method not in DRAW_METHODS:
                    continue
                recv_type = self.resolve_type(recv, func_key)
                if recv_type is not None and recv_type[0] == "optional":
                    recv_type = recv_type[1]
                tokens = frozenset(self.resolve_rng(recv, func_key))
                if recv_type is not None and recv_type != ("cls", RNG_CLASS):
                    # A known non-RNG type: .sample()/.pop() etc. on a
                    # project object or container is not a draw.
                    continue
                external = False
                if not tokens:
                    external = self._is_external_rng_param(recv, func_key)
                self.draws.append(
                    DrawSite(
                        func=func_key,
                        call=call,
                        method=method,
                        tokens=tokens,
                        external=external,
                    )
                )
                draw_owners.add(func_key)
        # Transitive draw reachability.
        self.transitive_draws = set(draw_owners)
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for caller, callees in self.edges.items():
                if caller in self.transitive_draws:
                    continue
                if any(c in self.transitive_draws for c in callees):
                    self.transitive_draws.add(caller)
                    changed = True
            if not changed:
                break

    def _is_external_rng_param(
        self, desc: Desc, func_key: Optional[FuncKey]
    ) -> bool:
        """Unattributed draw excuse: an annotated-RNG parameter that no
        project code ever binds (callers live outside, e.g. tests)."""
        root = desc
        while isinstance(root, tuple) and root and root[0] == "getattr":
            root = root[1]
        if (
            isinstance(root, tuple)
            and root
            and root[0] == "param"
            and func_key is not None
        ):
            func = self.functions.get(func_key)
            if func is None:
                return False
            ann = func.param_ann.get(root[1])
            ann_ok = ann == ("cls", RNG_CLASS) or (
                ann is not None
                and ann[0] == "optional"
                and ann[1] == ("cls", RNG_CLASS)
            )
            return ann_ok and (func_key, root[1]) not in self.bound_params
        return False

    # ------------------------------------------------------------------
    # Guard classification (for FLOW103 / TRC302)
    # ------------------------------------------------------------------

    def tracer_guard_lines(self, func_key: FuncKey) -> Dict[int, Any]:
        """Confirmed tracer-enabled guards in a function, by line."""
        func = self.functions.get(func_key)
        if func is None:
            return {}
        confirmed: Dict[int, Any] = {}
        for guard in func.guards:
            if self._guard_is_tracer(guard.test, func_key):
                confirmed[guard.line] = guard
        return confirmed

    def _guard_is_tracer(
        self, test: Desc, func_key: FuncKey, depth: int = 0
    ) -> bool:
        if depth > _RESOLVE_DEPTH or not isinstance(test, tuple) or not test:
            return False
        tag = test[0]
        if tag == "getattr" and test[2] == "enabled":
            return self.is_tracerish(test[1], func_key)
        if tag == "union":
            return any(
                self._guard_is_tracer(b, func_key, depth + 1) for b in test[1]
            )
        if tag == "selfattr":
            owner = self.owner_class(func_key)
            if owner is None:
                return False
            for cls in self.mro(owner):
                linked = self.classes.get(cls)
                if linked is None:
                    continue
                for value_desc, value_func in linked.attr_values.get(
                    test[1], []
                ):
                    if self._guard_is_tracer(
                        value_desc, value_func, depth + 1
                    ):
                        return True
            return False
        return False

    # ------------------------------------------------------------------
    # Convenience iterators for the rule packs
    # ------------------------------------------------------------------

    def iter_functions(self) -> Iterator[Tuple[FuncKey, FuncSummary]]:
        return iter(self.functions.items())

    def path_of(self, func_key: FuncKey) -> str:
        return self.paths.get(func_key[0], func_key[0])

    def finding(
        self,
        func_key: FuncKey,
        line: int,
        col: int,
        rule_id: str,
        message: str,
        hint: str = "",
    ) -> Finding:
        return Finding(
            path=self.path_of(func_key),
            line=line,
            col=col,
            rule_id=rule_id,
            message=message,
            hint=hint,
        )


# ---------------------------------------------------------------------------
# Project rule registry
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ProjectFinding:
    """A finding plus the function it anchors to (for baselining)."""

    finding: Finding
    module: str
    function: str


class ProjectRule:
    """Base class for one whole-program rule."""

    rule_id: str = ""
    summary: str = ""
    hint: str = ""

    def check(self, project: ProjectContext) -> Iterator[ProjectFinding]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<ProjectRule {self.rule_id}: {self.summary}>"


_PROJECT_REGISTRY: Dict[str, Type[ProjectRule]] = {}


def register_project(rule_cls: Type[ProjectRule]) -> Type[ProjectRule]:
    rule_id = rule_cls.rule_id
    if not rule_id:
        raise ValueError(f"project rule {rule_cls.__name__} has no rule_id")
    existing = _PROJECT_REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(f"duplicate project rule id {rule_id}")
    _PROJECT_REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_project_rules() -> List[Type[ProjectRule]]:
    return [_PROJECT_REGISTRY[k] for k in sorted(_PROJECT_REGISTRY)]


def project_rules_by_id(rule_ids: Iterable[str]) -> List[Type[ProjectRule]]:
    """Resolve project rule ids or pack prefixes (``FLOW``, ``ENC``...)."""
    wanted: List[Type[ProjectRule]] = []
    for rid in rule_ids:
        if rid in _PROJECT_REGISTRY:
            wanted.append(_PROJECT_REGISTRY[rid])
            continue
        pack = [
            cls
            for k, cls in sorted(_PROJECT_REGISTRY.items())
            if k.startswith(rid)
        ]
        wanted.extend(pack)
    return wanted
