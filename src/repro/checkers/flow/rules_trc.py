"""TRC3xx: trace purity — observability may watch, never steer.

The tracer/metrics layer exists so a traced run and an untraced run are
byte-identical.  That holds only if simulation code treats the tracer as
a sink: emission calls return nothing the simulation consumes, no draw
happens under a tracing guard, and tracer-side state (recorded events,
metric values, span clocks) never flows back into simulation variables.

TRC301  a tracer emission call whose result feeds an expression or
        assignment (emission must be a statement or a ``with`` item).
TRC302  a stochastic draw inside a tracer-enabled guarded block.
TRC303  simulation code reading tracer state (``.events``, ``.metrics``,
        ``.open_span_count``, ``now_s()``).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.checkers.flow.descriptors import Desc
from repro.checkers.flow.project import (
    ProjectContext,
    ProjectFinding,
    ProjectRule,
    register_project,
)
from repro.checkers.rules.determinism import SIMULATION_PACKAGES

#: Packages whose code must treat the tracer as write-only.  The
#: observability layer itself and the benchmarking harness are exempt —
#: reading recorded state is their job.
TRC_PACKAGES: Tuple[str, ...] = tuple(
    p for p in SIMULATION_PACKAGES if p not in ("repro.obs", "repro.perfbench")
)

#: Attributes that expose tracer-side state.
_STATE_ATTRS = frozenset({"events", "metrics", "open_span_count"})
_STATE_METHODS = frozenset({"now_s"})


def _in_trc_scope(module: str) -> bool:
    return any(
        module == p or module.startswith(p + ".") for p in TRC_PACKAGES
    )


def _mk(project: ProjectContext, rule: ProjectRule, func_key, line, col,
        message: str) -> ProjectFinding:
    return ProjectFinding(
        finding=project.finding(
            func_key, line, col, rule.rule_id, message, rule.hint
        ),
        module=func_key[0],
        function=func_key[1],
    )


@register_project
class EmissionFeedsValue(ProjectRule):
    rule_id = "TRC301"
    summary = "tracer emission results must not feed simulation values"
    hint = (
        "emit as a bare statement (or `with tracer.span(...)`); if you "
        "need the quantity, compute it first and pass it to the tracer"
    )

    def check(self, project: ProjectContext) -> Iterator[ProjectFinding]:
        for site in project.tracer_calls:
            if not _in_trc_scope(site.func[0]):
                continue
            if site.call.role != "value":
                continue
            yield _mk(
                project, self, site.func, site.call.line, site.call.col,
                f".{site.method}() result flows into an expression; "
                "emission must be observation-only",
            )


@register_project
class DrawUnderGuard(ProjectRule):
    rule_id = "TRC302"
    summary = "no stochastic draw inside a tracer-enabled block"
    hint = (
        "hoist the draw above the guard so traced and untraced runs "
        "consume identical stream state"
    )

    def check(self, project: ProjectContext) -> Iterator[ProjectFinding]:
        for draw in project.draws:
            if not _in_trc_scope(draw.func[0]):
                continue
            if draw.call.tguard is None:
                continue
            if draw.call.tguard not in project.tracer_guard_lines(draw.func):
                continue
            yield _mk(
                project, self, draw.func, draw.call.line, draw.call.col,
                f".{draw.method}() draw sits inside the tracer guard at "
                f"line {draw.call.tguard}; tracing would shift every "
                "subsequent draw",
            )


@register_project
class TracerStateRead(ProjectRule):
    rule_id = "TRC303"
    summary = "simulation code must not read tracer-side state"
    hint = (
        "tracer events/metrics are for exporters and tests; derive "
        "simulation decisions from simulation state instead"
    )

    def check(self, project: ProjectContext) -> Iterator[ProjectFinding]:
        for func_key, func in project.iter_functions():
            if not _in_trc_scope(func_key[0]):
                continue
            # Method-style reads: tracer.now_s().
            for call in func.calls:
                callee = call.callee
                if (
                    isinstance(callee, tuple)
                    and len(callee) == 3
                    and callee[0] == "getattr"
                    and callee[2] in _STATE_METHODS
                    and project.is_tracerish(callee[1], func_key)
                ):
                    yield _mk(
                        project, self, func_key, call.line, call.col,
                        f".{callee[2]}() reads the tracer's clock from "
                        "simulation code",
                    )
            # Attribute-style reads, wherever a descriptor with a line
            # anchor carries one: call arguments, returns, attr writes.
            anchored: List[Tuple[int, int, Desc]] = []
            for call in func.calls:
                for arg in call.args:
                    anchored.append((call.line, call.col, arg))
                for _, arg in call.kwargs:
                    anchored.append((call.line, call.col, arg))
            for line, desc in func.returns:
                anchored.append((line, 1, desc))
            for write in func.attr_writes:
                if write.value is not None:
                    anchored.append((write.line, write.col, write.value))
            seen = set()
            for line, col, desc in anchored:
                attr = self._state_read(project, desc, func_key)
                if attr is None or (line, attr) in seen:
                    continue
                seen.add((line, attr))
                yield _mk(
                    project, self, func_key, line, col,
                    f"tracer state .{attr} flows into simulation code",
                )

    def _state_read(
        self, project: ProjectContext, desc: Desc, func_key, depth: int = 0
    ):
        """First tracer-state attribute read nested in ``desc``, if any."""
        if depth > 8 or not isinstance(desc, tuple) or not desc:
            return None
        if (
            desc[0] == "getattr"
            and len(desc) == 3
            and desc[2] in _STATE_ATTRS
            and project.is_tracerish(desc[1], func_key)
        ):
            return desc[2]
        for part in desc:
            if isinstance(part, tuple):
                found = self._state_read(project, part, func_key, depth + 1)
                if found is not None:
                    return found
            elif isinstance(part, (list,)):
                for item in part:
                    found = self._state_read(
                        project, item, func_key, depth + 1
                    )
                    if found is not None:
                        return found
        return None
