"""Content-hash cache of per-module flow summaries.

One JSON file maps source paths to ``(sha256, summary)`` pairs.  A
module whose bytes have not changed is never re-parsed, so a warm
``--project`` run pays only the (fast) link/fixpoint.  The cache keys on
:data:`~repro.checkers.flow.summary.SUMMARY_VERSION`: bumping it after
an extraction change invalidates everything at once.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Tuple

from repro.checkers.flow.summary import (
    SUMMARY_VERSION,
    ModuleSummary,
    summarize_source,
)

#: Default cache location, repo-root-relative (gitignored).
DEFAULT_CACHE_PATH = ".repro_flow_cache.json"


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SummaryCache:
    """Load-or-compute wrapper around the cache file."""

    def __init__(self, path: Optional[str]) -> None:
        self.path = path
        self.entries: Dict[str, Tuple[str, dict]] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        if path is not None and os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
                if data.get("version") == SUMMARY_VERSION:
                    for key, pair in data.get("entries", {}).items():
                        self.entries[key] = (pair[0], pair[1])
            except (OSError, ValueError, KeyError, IndexError):
                self.entries = {}

    def summarize(
        self, source: str, path: str, module: Optional[str]
    ) -> ModuleSummary:
        digest = source_digest(source)
        cached = self.entries.get(path)
        if cached is not None and cached[0] == digest:
            try:
                summary = ModuleSummary.from_json(cached[1])
                self.hits += 1
                return summary
            except (KeyError, TypeError, ValueError, IndexError):
                pass  # corrupted entry: fall through and recompute
        self.misses += 1
        summary = summarize_source(source, path, module)
        self.entries[path] = (digest, summary.to_json())
        self._dirty = True
        return summary

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {
            "version": SUMMARY_VERSION,
            "entries": {k: list(v) for k, v in self.entries.items()},
        }
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
