"""ENC2xx: incremental-index encapsulation, proven project-wide.

The simulator keeps O(1) incremental indexes (powered-host counters,
partial-VM sets, shadow capacity arrays, VM residency fields) that must
only drift through their *sanctioned mutators* — the methods whose
paired bookkeeping keeps the index consistent with ground truth.  The
table below is the single source of truth: every entry names the class,
the attributes backing the index, the mutators allowed to write them,
and why that set is what it is.

ENC201  a write (assign, augment, subscript store, or in-place container
        mutation) to an index-backing attribute outside the sanctioned
        mutator set.
ENC202  a non-mutator method of the owning class returning the raw
        mutable index object (leaking write access).
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterator, Optional, Tuple

from repro.checkers.flow.descriptors import MUTATING_METHODS, SELF, Desc
from repro.checkers.flow.project import (
    FuncKey,
    ProjectContext,
    ProjectFinding,
    ProjectRule,
    register_project,
)


@dataclasses.dataclass(frozen=True)
class IndexSpec:
    """One incremental index: owner, backing attrs, sanctioned writers."""

    cls: str  # dotted owner class
    attrs: FrozenSet[str]
    #: function quals (within the owner's module) allowed to write.
    mutators: FrozenSet[str]
    reason: str
    #: the subset of ``attrs`` that are mutable containers; only these
    #: can leak write access when returned raw (ENC202).  Scalars
    #: (counters, enums, floats) are copied on return and stay exempt.
    leakable: FrozenSet[str] = frozenset()


INDEX_SPECS: Tuple[IndexSpec, ...] = (
    IndexSpec(
        cls="repro.farm.simulation.FarmSimulation",
        attrs=frozenset({"_partial_vms", "_away_full"}),
        leakable=frozenset({"_partial_vms", "_away_full"}),
        mutators=frozenset(
            {"FarmSimulation.__init__", "FarmSimulation._sync_vm_index"}
        ),
        reason=(
            "the partial-VM and away-from-home indexes mirror per-VM "
            "residency; _sync_vm_index is the single transition point "
            "that keeps them consistent with VirtualMachine state"
        ),
    ),
    IndexSpec(
        cls="repro.cluster.topology.Cluster",
        attrs=frozenset({"_powered_home", "_powered_consolidation"}),
        mutators=frozenset({"Cluster.__init__", "Cluster._on_power_edge"}),
        reason=(
            "powered-host counters update only on host power edges, via "
            "the listener the cluster registers at construction"
        ),
    ),
    IndexSpec(
        cls="repro.cluster.host.Host",
        attrs=frozenset(
            {"_vms", "_used_mib", "_full_count", "_partial_fraction"}
        ),
        leakable=frozenset({"_vms"}),
        mutators=frozenset(
            {
                "Host.__init__",
                "Host.attach",
                "Host.detach",
                "Host.convert_vm_full_in_place",
                "Host.grow_partial_vm",
            }
        ),
        reason=(
            "occupancy aggregates (used MiB, full count, partial "
            "fraction) move in lockstep with the VM map inside the four "
            "attach/detach/convert/grow transitions"
        ),
    ),
    IndexSpec(
        cls="repro.cluster.host.Host",
        attrs=frozenset({"_served_images"}),
        leakable=frozenset({"_served_images"}),
        mutators=frozenset(
            {
                "Host.__init__",
                "Host.add_served_image",
                "Host.remove_served_image",
            }
        ),
        reason=(
            "the served-image set backs the memory-server fan-out "
            "metric; the paired add/remove keep it consistent with "
            "partial-VM placement"
        ),
    ),
    IndexSpec(
        cls="repro.core.placement._ShadowCapacity",
        attrs=frozenset({"free", "effective", "woken", "powered"}),
        leakable=frozenset({"free", "effective", "woken", "powered"}),
        mutators=frozenset(
            {
                "_ShadowCapacity.__init__",
                "_ShadowCapacity.place",
                "_ShadowCapacity.unplace",
                "GreedyVacatePlanner._try_vacate",
                "GreedyVacatePlanner._plan_compaction",
            }
        ),
        reason=(
            "shadow arrays are the planner's speculative view; the two "
            "planner hot loops update them inline (byte-identity with "
            "the event-compiled path forbids call-through), so they are "
            "sanctioned alongside place/unplace"
        ),
    ),
    IndexSpec(
        cls="repro.vm.machine.VirtualMachine",
        attrs=frozenset(
            {"residency", "host_id", "home_id", "working_set_mib"}
        ),
        mutators=frozenset(
            {
                "VirtualMachine.__init__",
                "VirtualMachine.become_partial",
                "VirtualMachine.relocate_partial",
                "VirtualMachine.reintegrate",
                "VirtualMachine.become_full_at",
                "VirtualMachine.become_full_in_place",
                "VirtualMachine.full_migrate",
                "VirtualMachine.grow_working_set",
            }
        ),
        reason=(
            "residency/location fields drive every index above them; "
            "the named transition methods validate invariants before "
            "mutating, so direct writes bypass those checks"
        ),
    ),
)


def _spec_module(spec: IndexSpec) -> str:
    return spec.cls.rsplit(".", 1)[0]


def _receiver_targets(
    project: ProjectContext,
    spec: IndexSpec,
    recv: Desc,
    func_key: FuncKey,
) -> bool:
    """Does this receiver descriptor denote an instance of the spec class?

    Unknown receiver types count as targeting (conservative): attribute
    names like ``_powered_home`` are specific enough that a name match
    on an unresolvable receiver is almost certainly the real index.
    """
    if recv == SELF:
        owner = project.owner_class(func_key)
        if owner is None:
            return False
        return spec.cls in project.mro(owner)
    resolved = project.resolve_type(recv, func_key)
    if resolved is not None and resolved[0] == "optional":
        resolved = resolved[1]
    if resolved is not None and resolved[0] == "cls":
        return spec.cls in project.mro(resolved[1])
    return True  # unknown type: conservative


def _is_sanctioned(spec: IndexSpec, func_key: FuncKey, qual: str) -> bool:
    return func_key[0] == _spec_module(spec) and qual in spec.mutators


def _mk(project: ProjectContext, rule: ProjectRule, func_key, line, col,
        message: str) -> ProjectFinding:
    return ProjectFinding(
        finding=project.finding(
            func_key, line, col, rule.rule_id, message, rule.hint
        ),
        module=func_key[0],
        function=func_key[1],
    )


@register_project
class RogueIndexWrite(ProjectRule):
    rule_id = "ENC201"
    summary = "index-backing attributes change only via sanctioned mutators"
    hint = (
        "route the update through the owner's sanctioned mutator (see "
        "INDEX_SPECS in repro.checkers.flow.rules_enc), or add this "
        "function to the table with a reason"
    )

    def check(self, project: ProjectContext) -> Iterator[ProjectFinding]:
        for func_key, func in project.iter_functions():
            for spec in INDEX_SPECS:
                if _is_sanctioned(spec, func_key, func.qual):
                    continue
                for write in func.attr_writes:
                    if write.attr not in spec.attrs:
                        continue
                    if not _receiver_targets(
                        project, spec, write.recv, func_key
                    ):
                        continue
                    yield _mk(
                        project, self, func_key, write.line, write.col,
                        f"{func.qual} writes index attribute "
                        f"{spec.cls.rsplit('.', 1)[1]}.{write.attr} "
                        f"({write.kind}) outside its sanctioned mutators",
                    )
                for call in func.calls:
                    attr_recv = self._mutating_index_call(spec, call.callee)
                    if attr_recv is None:
                        continue
                    attr, recv = attr_recv
                    if not _receiver_targets(project, spec, recv, func_key):
                        continue
                    yield _mk(
                        project, self, func_key, call.line, call.col,
                        f"{func.qual} mutates index attribute "
                        f"{spec.cls.rsplit('.', 1)[1]}.{attr} in place "
                        f"(.{call.callee[2]}()) outside its sanctioned "
                        "mutators",
                    )

    @staticmethod
    def _mutating_index_call(
        spec: IndexSpec, callee: Desc
    ) -> Optional[Tuple[str, Desc]]:
        """``X.attr.add(...)``-style in-place mutation of an index attr."""
        if (
            not isinstance(callee, tuple)
            or len(callee) != 3
            or callee[0] != "getattr"
            or callee[2] not in MUTATING_METHODS
        ):
            return None
        holder = callee[1]
        if not isinstance(holder, tuple) or not holder:
            return None
        if holder[0] == "selfattr" and holder[1] in spec.attrs:
            return holder[1], SELF
        if (
            holder[0] == "getattr"
            and len(holder) == 3
            and holder[2] in spec.attrs
        ):
            return holder[2], holder[1]
        return None


@register_project
class LeakedIndexHandle(ProjectRule):
    rule_id = "ENC202"
    summary = "non-mutator methods must not return raw index objects"
    hint = (
        "return a copy (list(...)/set(...)/dict(...)) or an immutable "
        "view instead of the live index container"
    )

    def check(self, project: ProjectContext) -> Iterator[ProjectFinding]:
        for func_key, func in project.iter_functions():
            if func.cls is None:
                continue
            owner = project.owner_class(func_key)
            if owner is None:
                continue
            for spec in INDEX_SPECS:
                if spec.cls not in project.mro(owner):
                    continue
                if _is_sanctioned(spec, func_key, func.qual):
                    continue
                for line, desc in func.returns:
                    if (
                        isinstance(desc, tuple)
                        and len(desc) == 2
                        and desc[0] == "selfattr"
                        and desc[1] in spec.leakable
                    ):
                        yield _mk(
                            project, self, func_key, line, 1,
                            f"{func.qual} returns the live index object "
                            f"self.{desc[1]}; callers could mutate it "
                            "behind the sanctioned mutators' back",
                        )
