"""Value descriptors: the abstract domain of the flow analysis.

A *descriptor* is a small immutable tree (nested tuples) approximating
where a runtime value came from, precise enough to answer the three
questions the FLOW/ENC/TRC packs ask — "which RNG stream is this?",
"which attribute does this alias?", "is this a tracer?" — while staying
JSON-serialisable so per-module summaries can be cached by content hash.

Grammar (first element is the tag)::

    ("self",)                       the receiver of the enclosing method
    ("param", name)                 a function parameter
    ("selfattr", attr)              self.<attr>
    ("getattr", desc, attr)         <desc>.<attr>
    ("global", name)                a module-scope name (import, class,
                                    function, constant, builtin)
    ("localfunc", qual)             a function defined in this module
    ("call", callee, args, kwargs, line)
                                    the result of calling <callee>; args
                                    is a tuple of descriptors, kwargs a
                                    tuple of (name, descriptor) pairs
    ("sub", desc)                   <desc>[...]
    ("iter", desc)                  an element produced by iterating
    ("union", (d1, d2, ...))        either branch of an ``IfExp`` /
                                    ``BoolOp`` / conditional assignment
    ("const", value)                a literal (str/int/float/bool/None)
    ("opaque",)                     anything the domain does not model

Descriptors are built by :mod:`repro.checkers.flow.summary` and
interpreted by :mod:`repro.checkers.flow.project`, which resolves them
against the whole-program symbol table (types, RNG attribution).
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Tuple

#: A descriptor; see the module docstring for the grammar.
Desc = Tuple[Any, ...]

#: Maximum descriptor tree depth; deeper values collapse to ``opaque``.
MAX_DEPTH = 8

OPAQUE: Desc = ("opaque",)
SELF: Desc = ("self",)

#: ``random.Random`` method names that consume stream state.  A call to
#: one of these on an RNG-typed receiver is a *draw site*.
DRAW_METHODS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Container methods that mutate their receiver in place; a call to one
#: of these on an index-backing attribute counts as an index write.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

#: The emission surface of :class:`repro.obs.tracer.Tracer`.
TRACER_METHODS = frozenset(
    {"counter", "event", "gauge", "observe", "set_clock", "span"}
)


def eval_expr(node: ast.AST, env: Dict[str, Desc], depth: int = 0) -> Desc:
    """Abstract one expression into a descriptor under local bindings ``env``."""
    if depth > MAX_DEPTH:
        return OPAQUE
    if isinstance(node, ast.Name):
        return env.get(node.id, ("global", node.id))
    if isinstance(node, ast.Attribute):
        value = eval_expr(node.value, env, depth + 1)
        if value == SELF:
            return ("selfattr", node.attr)
        if value == OPAQUE:
            return OPAQUE
        return ("getattr", value, node.attr)
    if isinstance(node, ast.Call):
        callee = eval_expr(node.func, env, depth + 1)
        args: List[Desc] = []
        for arg in node.args[:8]:
            if isinstance(arg, ast.Starred):
                args.append(OPAQUE)
            else:
                args.append(eval_expr(arg, env, depth + 1))
        kwargs: List[Tuple[str, Desc]] = []
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs
                continue
            kwargs.append((kw.arg, eval_expr(kw.value, env, depth + 1)))
        return (
            "call",
            callee,
            tuple(args),
            tuple(kwargs),
            getattr(node, "lineno", 0),
        )
    if isinstance(node, ast.Constant):
        if node.value is None or isinstance(node.value, (str, int, float, bool)):
            return ("const", node.value)
        return OPAQUE
    if isinstance(node, ast.IfExp):
        return union(
            eval_expr(node.body, env, depth + 1),
            eval_expr(node.orelse, env, depth + 1),
        )
    if isinstance(node, ast.BoolOp):
        branches = [eval_expr(v, env, depth + 1) for v in node.values]
        result = branches[0]
        for branch in branches[1:]:
            result = union(result, branch)
        return result
    if isinstance(node, ast.Subscript):
        value = eval_expr(node.value, env, depth + 1)
        if value == OPAQUE:
            return OPAQUE
        return ("sub", value)
    if isinstance(node, ast.Await):
        return eval_expr(node.value, env, depth + 1)
    if isinstance(node, ast.NamedExpr):
        return eval_expr(node.value, env, depth + 1)
    return OPAQUE


def union(left: Desc, right: Desc) -> Desc:
    """Join two descriptors, flattening nested unions."""
    if left == right:
        return left
    parts: List[Desc] = []
    for desc in (left, right):
        if desc[0] == "union":
            parts.extend(desc[1])
        else:
            parts.append(desc)
    unique: List[Desc] = []
    for desc in parts:
        if desc not in unique:
            unique.append(desc)
    if len(unique) == 1:
        return unique[0]
    return ("union", tuple(unique))


def walk_shallow(root: ast.AST):
    """``ast.walk`` that does not descend into nested function bodies.

    The root itself may be a function; its own body is walked, but any
    ``def``/``lambda`` nested inside it is yielded without entering it —
    nested functions get their own summaries.
    """
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        if node is not root and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def to_json(desc: Any) -> Any:
    """Descriptor -> JSON-ready nested lists (tuples become lists)."""
    if isinstance(desc, tuple):
        return [to_json(part) for part in desc]
    return desc


def from_json(data: Any) -> Any:
    """JSON nested lists -> descriptor (inverse of :func:`to_json`)."""
    if isinstance(data, list):
        return tuple(from_json(part) for part in data)
    return data
