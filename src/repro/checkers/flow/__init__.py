"""Whole-program flow analysis: RNG discipline, index encapsulation,
trace purity.

Layered like a small compiler front half:

- :mod:`~repro.checkers.flow.descriptors` — the abstract value domain.
- :mod:`~repro.checkers.flow.fingerprint` — structural matching of
  inlined ``random.Random`` replicas against the library reference.
- :mod:`~repro.checkers.flow.summary` — one cached, JSON-serialisable
  effect summary per module.
- :mod:`~repro.checkers.flow.project` — linking, type resolution, the
  RNG-attribution fixpoint, and draw/tracer classification.
- :mod:`~repro.checkers.flow.rules_flow` / ``rules_enc`` / ``rules_trc``
  — the FLOW1xx / ENC2xx / TRC3xx packs.
- :mod:`~repro.checkers.flow.runner` — the ``--project`` entry point
  with caching and the reviewed-baseline mechanism.
"""

from repro.checkers.flow.baseline import (
    DEFAULT_BASELINE_PATH,
    BaselineEntry,
    apply_baseline,
    load_baseline,
)
from repro.checkers.flow.cache import DEFAULT_CACHE_PATH, SummaryCache
from repro.checkers.flow.project import (
    ProjectContext,
    ProjectFinding,
    ProjectRule,
    all_project_rules,
    project_rules_by_id,
    register_project,
)
from repro.checkers.flow.runner import (
    ProjectResult,
    check_project,
    project_rule_metadata,
)
from repro.checkers.flow.sarif import to_sarif
from repro.checkers.flow.summary import (
    SUMMARY_VERSION,
    ModuleSummary,
    summarize_source,
)

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_CACHE_PATH",
    "BaselineEntry",
    "ModuleSummary",
    "ProjectContext",
    "ProjectFinding",
    "ProjectResult",
    "ProjectRule",
    "SUMMARY_VERSION",
    "SummaryCache",
    "all_project_rules",
    "apply_baseline",
    "check_project",
    "load_baseline",
    "project_rule_metadata",
    "project_rules_by_id",
    "register_project",
    "summarize_source",
    "to_sarif",
]
