"""Minimal SARIF 2.1.0 rendering of checker findings.

Just enough of the schema for code-scanning UIs to ingest: one run, one
driver, per-rule metadata, and one result per finding with a physical
location.  No external dependencies.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from repro.checkers.findings import Finding

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_meta(rule_id: str, summary: str, hint: str) -> Dict[str, Any]:
    meta: Dict[str, Any] = {
        "id": rule_id,
        "shortDescription": {"text": summary or rule_id},
    }
    if hint:
        meta["help"] = {"text": hint}
    return meta


def to_sarif(
    findings: Sequence[Finding],
    rule_meta: Iterable[Dict[str, Any]] = (),
    tool_name: str = "repro-checkers",
) -> Dict[str, Any]:
    """Render findings as a SARIF log object (caller serialises)."""
    rules: List[Dict[str, Any]] = list(rule_meta)
    known = {r["id"] for r in rules}
    for finding in findings:
        if finding.rule_id not in known:
            rules.append(_rule_meta(finding.rule_id, "", finding.hint))
            known.add(finding.rule_id)
    results = [
        {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/")
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "rules": sorted(rules, key=lambda r: r["id"]),
                    }
                },
                "results": results,
            }
        ],
    }
