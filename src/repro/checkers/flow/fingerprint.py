"""Structural fingerprints for the hot path's inlined RNG replicas.

PR 5 fused two ``random.Random`` primitives into the planner's inner
loop for speed, with the contract that they stay *bit-identical* to the
library routines they replaced:

* the Box-Muller ``gauss`` window (including the ``gauss_next`` pair
  cache) in :mod:`repro.migration.costs` and
  :mod:`repro.core.placement`;
* the ``choice`` replica — ``getrandbits`` rejection loop — in
  :meth:`GreedyVacatePlanner._try_vacate`.

A drive-by "cleanup" of either (simplifying the rejection loop, dropping
the pair cache, reordering the two uniform draws) silently changes every
downstream byte.  This module matches the canonical statement windows
structurally — alpha-renamed locals allowed, math helpers resolved
through the module's import aliases — and reports any use of the
anchoring constructs (``gauss_next``, a ``getrandbits`` rejection
``while``) that does *not* sit inside a verified window.  FLOW104 turns
those reports into findings.

The canonical gauss window (alias assignment optional, names free)::

    z = R.gauss_next
    R.gauss_next = None
    if z is None:
        u = R.random            # optional, may also be a prior alias
        x = u() * TWOPI
        g = sqrt(-2.0 * log(1.0 - u()))
        z = cos(x) * g
        R.gauss_next = sin(x) * g

The canonical choice replica::

    k = n.bit_length()
    r = gb(k)
    while r >= n:
        r = gb(k)
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Set

from repro.checkers.flow.descriptors import Desc, eval_expr, walk_shallow

#: ``import_map`` targets recognised for the math helpers.
_MATH_NAMES = {
    "sqrt": "math.sqrt",
    "log": "math.log",
    "cos": "math.cos",
    "sin": "math.sin",
}
_TAU = "math.tau"


@dataclasses.dataclass
class ReplicaSite:
    """One anchoring construct: a matched or broken inline replica."""

    line: int
    col: int
    kind: str  # "gauss" | "choice"
    ok: bool
    detail: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "line": self.line,
            "col": self.col,
            "kind": self.kind,
            "ok": self.ok,
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ReplicaSite":
        return cls(**data)  # type: ignore[arg-type]


class ReplicaMatcher:
    """Matches canonical windows inside one function as it is walked.

    The summary builder calls :meth:`try_gauss_window` for every
    position in every statement list and :meth:`try_choice_loop` for
    every ``while``; after the walk, :meth:`finish` reports anchors the
    matched windows did not cover.
    """

    def __init__(self, func_node: ast.AST, import_map: Dict[str, str]) -> None:
        self._func = func_node
        self._imports = import_map
        self._covered_gauss: Set[int] = set()  # id() of gauss_next Attributes
        self._covered_while: Set[int] = set()  # id() of matched While nodes
        self.sites: List[ReplicaSite] = []

    # -- helpers ---------------------------------------------------------

    def _math_target(self, node: ast.AST, env: Dict[str, Desc]) -> Optional[str]:
        """Resolve a callable/name node to its dotted import target."""
        if isinstance(node, ast.Name):
            return self._imports.get(node.id)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            base = self._imports.get(node.value.id)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    def _is_math(self, node: ast.AST, env: Dict[str, Desc], name: str) -> bool:
        return self._math_target(node, env) == _MATH_NAMES[name]

    def _is_tau(self, node: ast.AST, env: Dict[str, Desc]) -> bool:
        target = self._math_target(node, env)
        if target == _TAU:
            return True
        # ``2.0 * math.pi`` style is also byte-identical.
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Mult)
            and isinstance(node.left, ast.Constant)
            and node.left.value == 2.0
        ):
            return self._math_target(node.right, env) == "math.pi"
        return False

    @staticmethod
    def _recv_of(node: ast.AST, env: Dict[str, Desc]) -> Optional[Desc]:
        """Descriptor of ``X`` in an ``X.gauss_next`` attribute node."""
        if isinstance(node, ast.Attribute):
            return eval_expr(node.value, env)
        return None

    def _uniform_call(
        self, node: ast.AST, env: Dict[str, Desc], recv: Desc
    ) -> bool:
        """Is ``node`` a zero-arg call of ``R.random`` (direct or alias)?"""
        if not isinstance(node, ast.Call) or node.args or node.keywords:
            return False
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "random":
            return eval_expr(func.value, env) == recv
        if isinstance(func, ast.Name):
            return env.get(func.id) == ("getattr", recv, "random")
        return False

    def _getrandbits_call(
        self, node: ast.AST, env: Dict[str, Desc], arg_name: str
    ) -> bool:
        """Is ``node`` a call ``gb(k)`` with gb an rng ``getrandbits``?"""
        if not isinstance(node, ast.Call) or len(node.args) != 1 or node.keywords:
            return False
        if not (
            isinstance(node.args[0], ast.Name) and node.args[0].id == arg_name
        ):
            return False
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "getrandbits":
            return True
        if isinstance(func, ast.Name):
            bound = env.get(func.id)
            return (
                isinstance(bound, tuple)
                and len(bound) == 3
                and bound[0] == "getattr"
                and bound[2] == "getrandbits"
            )
        return False

    # -- gauss window ----------------------------------------------------

    def try_gauss_window(
        self, stmts: List[ast.stmt], index: int, env: Dict[str, Desc]
    ) -> None:
        """Try to match the canonical gauss window at ``stmts[index]``.

        Called with the *pre-statement* environment, so hoisted aliases
        (``uniform01 = rng.random`` in the function prologue) resolve.
        Matches are recorded; mismatched windows become sites when
        :meth:`finish` finds their uncovered ``gauss_next`` anchors.
        """
        head = stmts[index]
        # Anchor: ``z = R.gauss_next``.
        if not (
            isinstance(head, ast.Assign)
            and len(head.targets) == 1
            and isinstance(head.targets[0], ast.Name)
            and isinstance(head.value, ast.Attribute)
            and head.value.attr == "gauss_next"
        ):
            return
        if index + 2 >= len(stmts):
            return
        z_name = head.targets[0].id
        recv = self._recv_of(head.value, env)
        clear, branch = stmts[index + 1], stmts[index + 2]
        # ``R.gauss_next = None``
        if not (
            isinstance(clear, ast.Assign)
            and len(clear.targets) == 1
            and isinstance(clear.targets[0], ast.Attribute)
            and clear.targets[0].attr == "gauss_next"
            and self._recv_of(clear.targets[0], env) == recv
            and isinstance(clear.value, ast.Constant)
            and clear.value.value is None
        ):
            return
        # ``if z is None:`` with no else.
        if not (
            isinstance(branch, ast.If)
            and not branch.orelse
            and isinstance(branch.test, ast.Compare)
            and isinstance(branch.test.left, ast.Name)
            and branch.test.left.id == z_name
            and len(branch.test.ops) == 1
            and isinstance(branch.test.ops[0], ast.Is)
            and isinstance(branch.test.comparators[0], ast.Constant)
            and branch.test.comparators[0].value is None
        ):
            return
        body = list(branch.body)
        local_env = dict(env)
        # Optional in-window alias: ``u = R.random``.
        if (
            body
            and isinstance(body[0], ast.Assign)
            and len(body[0].targets) == 1
            and isinstance(body[0].targets[0], ast.Name)
            and isinstance(body[0].value, ast.Attribute)
            and body[0].value.attr == "random"
            and eval_expr(body[0].value.value, local_env) == recv
        ):
            local_env[body[0].targets[0].id] = ("getattr", recv, "random")
            body = body[1:]
        if len(body) != 4:
            return
        x2pi, g2rad, z_assign, cache = body
        # ``x = u() * TAU``
        if not (
            isinstance(x2pi, ast.Assign)
            and len(x2pi.targets) == 1
            and isinstance(x2pi.targets[0], ast.Name)
            and isinstance(x2pi.value, ast.BinOp)
            and isinstance(x2pi.value.op, ast.Mult)
            and self._uniform_call(x2pi.value.left, local_env, recv)
            and self._is_tau(x2pi.value.right, local_env)
        ):
            return
        x_name = x2pi.targets[0].id
        # ``g = sqrt(-2.0 * log(1.0 - u()))``
        if not (
            isinstance(g2rad, ast.Assign)
            and len(g2rad.targets) == 1
            and isinstance(g2rad.targets[0], ast.Name)
            and isinstance(g2rad.value, ast.Call)
            and self._is_math(g2rad.value.func, local_env, "sqrt")
            and len(g2rad.value.args) == 1
        ):
            return
        g_name = g2rad.targets[0].id
        inner = g2rad.value.args[0]
        ok = (
            isinstance(inner, ast.BinOp)
            and isinstance(inner.op, ast.Mult)
            and _is_neg_two(inner.left)
            and isinstance(inner.right, ast.Call)
            and self._is_math(inner.right.func, local_env, "log")
            and len(inner.right.args) == 1
            and isinstance(inner.right.args[0], ast.BinOp)
            and isinstance(inner.right.args[0].op, ast.Sub)
            and isinstance(inner.right.args[0].left, ast.Constant)
            and inner.right.args[0].left.value == 1.0
            and self._uniform_call(inner.right.args[0].right, local_env, recv)
        )
        if not ok:
            return

        def _pair(node: ast.stmt, trig: str, target_is_cache: bool) -> bool:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                return False
            target = node.targets[0]
            if target_is_cache:
                if not (
                    isinstance(target, ast.Attribute)
                    and target.attr == "gauss_next"
                    and self._recv_of(target, local_env) == recv
                ):
                    return False
            else:
                if not (isinstance(target, ast.Name) and target.id == z_name):
                    return False
            value = node.value
            return (
                isinstance(value, ast.BinOp)
                and isinstance(value.op, ast.Mult)
                and isinstance(value.left, ast.Call)
                and self._is_math(value.left.func, local_env, trig)
                and len(value.left.args) == 1
                and isinstance(value.left.args[0], ast.Name)
                and value.left.args[0].id == x_name
                and isinstance(value.right, ast.Name)
                and value.right.id == g_name
            )

        if not (_pair(z_assign, "cos", False) and _pair(cache, "sin", True)):
            return
        # Full window verified: record and mark its anchors covered.
        for node in (head.value, clear.targets[0], cache.targets[0]):
            self._covered_gauss.add(id(node))
        self.sites.append(
            ReplicaSite(
                line=head.lineno,
                col=head.col_offset + 1,
                kind="gauss",
                ok=True,
                detail="matches random.Random.gauss (Box-Muller pair cache)",
            )
        )

    # -- choice rejection loop -------------------------------------------

    def try_choice_loop(
        self, stmts: List[ast.stmt], index: int, env: Dict[str, Desc]
    ) -> None:
        """Try to match the ``getrandbits`` rejection loop at a ``while``."""
        loop = stmts[index]
        if not isinstance(loop, ast.While) or loop.orelse:
            return
        test = loop.test
        if not (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.GtE)
            and isinstance(test.comparators[0], ast.Name)
        ):
            return
        r_name = test.left.id
        n_name = test.comparators[0].id
        if len(loop.body) != 1:
            return
        redraw = loop.body[0]
        if not (
            isinstance(redraw, ast.Assign)
            and len(redraw.targets) == 1
            and isinstance(redraw.targets[0], ast.Name)
            and redraw.targets[0].id == r_name
            and isinstance(redraw.value, ast.Call)
        ):
            return
        k_args = [
            a.id for a in redraw.value.args if isinstance(a, ast.Name)
        ]
        if len(k_args) != 1:
            return
        k_name = k_args[0]
        if not self._getrandbits_call(redraw.value, env, k_name):
            return
        # The two statements before the loop: ``k = n.bit_length()`` then
        # ``r = gb(k)`` (the initial draw).
        if index < 2:
            return
        first_draw, k_assign = stmts[index - 1], stmts[index - 2]
        if not (
            isinstance(first_draw, ast.Assign)
            and len(first_draw.targets) == 1
            and isinstance(first_draw.targets[0], ast.Name)
            and first_draw.targets[0].id == r_name
            and self._getrandbits_call(first_draw.value, env, k_name)
        ):
            return
        if not (
            isinstance(k_assign, ast.Assign)
            and len(k_assign.targets) == 1
            and isinstance(k_assign.targets[0], ast.Name)
            and k_assign.targets[0].id == k_name
            and isinstance(k_assign.value, ast.Call)
            and isinstance(k_assign.value.func, ast.Attribute)
            and k_assign.value.func.attr == "bit_length"
            and isinstance(k_assign.value.func.value, ast.Name)
            and k_assign.value.func.value.id == n_name
            and not k_assign.value.args
        ):
            return
        self._covered_while.add(id(loop))
        self.sites.append(
            ReplicaSite(
                line=k_assign.lineno,
                col=k_assign.col_offset + 1,
                kind="choice",
                ok=True,
                detail="matches random.Random._randbelow rejection loop",
            )
        )

    # -- post-walk sweep -------------------------------------------------

    def finish(self) -> List[ReplicaSite]:
        """Report anchors no verified window covered, then return all sites."""
        for node in walk_shallow(self._func):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "gauss_next"
                and id(node) not in self._covered_gauss
            ):
                self.sites.append(
                    ReplicaSite(
                        line=node.lineno,
                        col=node.col_offset + 1,
                        kind="gauss",
                        ok=False,
                        detail=(
                            "gauss_next use outside a verified Box-Muller "
                            "window"
                        ),
                    )
                )
            elif isinstance(node, ast.While) and id(node) not in self._covered_while:
                if _while_touches_getrandbits(node):
                    self.sites.append(
                        ReplicaSite(
                            line=node.lineno,
                            col=node.col_offset + 1,
                            kind="choice",
                            ok=False,
                            detail=(
                                "getrandbits loop diverges from the "
                                "Random.choice rejection-loop reference"
                            ),
                        )
                    )
        return self.sites


def _is_neg_two(node: ast.AST) -> bool:
    """``-2.0`` either as a constant or a unary minus."""
    if isinstance(node, ast.Constant):
        return node.value == -2.0
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and node.operand.value == 2.0
    )


def _while_touches_getrandbits(loop: ast.While) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, ast.Attribute) and node.attr == "getrandbits":
            return True
        if isinstance(node, ast.Name) and node.id == "getrandbits":
            return True
    return False
