"""FLOW1xx: RNG-stream discipline, proven project-wide.

FLOW101  every reachable draw attributes to a named stream (or a seeded
         ``random.Random`` constructed at a known site, or an external
         entry-point parameter no project code binds).
FLOW102  fault-injection draws are short-circuited by a zero-probability
         guard before the stream is touched.
FLOW103  no stochastic work hides under a tracer-enabled guard unless
         the ``else`` branch mirrors the same call.
FLOW104  inlined hot-path replicas of ``random.Random.gauss`` /
         ``choice`` stay bit-exact with their library reference.
"""

from __future__ import annotations

from typing import Iterator

from repro.checkers.flow.project import (
    ProjectContext,
    ProjectFinding,
    ProjectRule,
    register_project,
)

#: Module prefixes FLOW1xx ignores (the analysis tooling itself).
_FLOW_EXEMPT = ("repro.checkers",)


def _in_flow_scope(module: str) -> bool:
    if not module.startswith("repro"):
        return True  # unknown module names stay in scope (conservative)
    return not any(
        module == p or module.startswith(p + ".") for p in _FLOW_EXEMPT
    )


def _mk(project: ProjectContext, rule: ProjectRule, func_key, line, col,
        message: str) -> ProjectFinding:
    return ProjectFinding(
        finding=project.finding(
            func_key, line, col, rule.rule_id, message, rule.hint
        ),
        module=func_key[0],
        function=func_key[1],
    )


@register_project
class UnattributedDraw(ProjectRule):
    rule_id = "FLOW101"
    summary = "every draw must attribute to exactly one named RNG stream"
    hint = (
        "thread an RngStreams stream (streams.get(\"name\")) or a "
        "random.Random seeded at construction to this receiver"
    )

    def check(self, project: ProjectContext) -> Iterator[ProjectFinding]:
        for draw in project.draws:
            if not _in_flow_scope(draw.func[0]):
                continue
            if draw.tokens or draw.external:
                continue
            yield _mk(
                project, self, draw.func, draw.call.line, draw.call.col,
                f".{draw.method}() draw does not resolve to any RNG "
                "stream; randomness here is invisible to seed discipline",
            )


@register_project
class UnguardedFaultDraw(ProjectRule):
    rule_id = "FLOW102"
    summary = "fault-injection draws must short-circuit on zero probability"
    hint = (
        "add `if profile.<x>_prob <= 0.0: return ...` before the first "
        "draw so disabled faults never advance the stream"
    )

    def check(self, project: ProjectContext) -> Iterator[ProjectFinding]:
        first_draw = {}
        for draw in project.draws:
            module = draw.func[0]
            if not (module == "repro.faults"
                    or module.startswith("repro.faults.")):
                continue
            prev = first_draw.get(draw.func)
            if prev is None or draw.call.order < prev.call.order:
                first_draw[draw.func] = draw
        for func_key, draw in sorted(first_draw.items()):
            func = project.functions[func_key]
            if func.qual.endswith("__init__"):
                continue
            guarded = any(
                order < draw.call.order for order, _, _ in func.prob_guards
            )
            if not guarded:
                yield _mk(
                    project, self, func_key, draw.call.line, draw.call.col,
                    f"{func.qual} draws at order {draw.call.order} with no "
                    "zero-probability short-circuit before it; a disabled "
                    "fault profile would still advance the stream",
                )


@register_project
class DrawUnderTraceGuard(ProjectRule):
    rule_id = "FLOW103"
    summary = "stochastic work under a tracer guard must be mirrored"
    hint = (
        "hoist the draw out of the `if tracer.enabled:` block, or call "
        "the same function in the else branch so both paths consume "
        "identical stream state"
    )

    def check(self, project: ProjectContext) -> Iterator[ProjectFinding]:
        for func_key, func in project.iter_functions():
            if not _in_flow_scope(func_key[0]):
                continue
            guards = project.tracer_guard_lines(func_key)
            if not guards:
                continue
            for call in func.calls:
                if call.tguard is None or call.tguard not in guards:
                    continue
                call_desc = (
                    "call", call.callee, call.args, call.kwargs, call.line
                )
                target = project._resolve_call_target(call_desc, func_key)
                if target is None or target[0] != "func":
                    continue
                if target[1] not in project.transitive_draws:
                    continue
                guard = guards[call.tguard]
                if guard.has_else and call.callee in guard.else_callees:
                    continue
                callee = project.functions.get(target[1])
                name = callee.qual if callee else str(target[1])
                yield _mk(
                    project, self, func_key, call.line, call.col,
                    f"call to stochastic {name} sits under the tracer "
                    f"guard at line {call.tguard} with no mirrored call "
                    "in the else branch; traced and untraced runs would "
                    "consume different stream state",
                )


@register_project
class DriftedReplica(ProjectRule):
    rule_id = "FLOW104"
    summary = "inlined RNG replicas must stay bit-exact with the library"
    hint = (
        "restore the canonical gauss/choice window (see "
        "random.Random.gauss and _randbelow_with_getrandbits) or call "
        "the rng method directly"
    )

    def check(self, project: ProjectContext) -> Iterator[ProjectFinding]:
        for func_key, func in project.iter_functions():
            if not _in_flow_scope(func_key[0]):
                continue
            for site in func.replica_sites:
                if site.ok:
                    continue
                yield _mk(
                    project, self, func_key, site.line, site.col,
                    f"inlined {site.kind} replica in {func.qual} does not "
                    f"match the random.Random reference: {site.detail}",
                )
