"""repro.checkers — AST-based invariant linter for the repro codebase.

The simulation's three load-bearing disciplines are conventions, not
types: deterministic named RNG streams, one unit system encoded in
identifier suffixes, and declared state machines for VMs and hosts.
This package turns those conventions into machine-checked rules:

* ``DET1xx`` — everything stochastic flows through
  :class:`~repro.simulator.randomness.RngStreams`; no wall clocks, no
  unsorted-set iteration in result-producing packages;
* ``UNIT1xx`` — ``_s`` / ``_mib`` / ``_mib_per_s`` / ``_w`` / ``_j``
  suffix families must not mix without a :mod:`repro.units` helper;
* ``SM1xx`` — power/activity/residency assignments obey the declared
  transition tables;
* ``API1xx`` — every ``__all__`` entry resolves and every public
  ``__init__`` symbol is exported exactly once.

Cross-module properties the per-file packs cannot see are proven by the
whole-program packs in :mod:`repro.checkers.flow` (run with
``--project``): RNG-stream attribution through the call graph
(``FLOW1xx``), index-write encapsulation (``ENC2xx``), and trace purity
(``TRC3xx``), with a content-hash summary cache and a reviewed
``flow-baseline.json``.

Run it with ``python -m repro.checkers [paths]``; suppress one finding
with a ``# repro: noqa[RULE]`` comment on the flagged line, or a whole
file with ``# repro: noqa-file[RULE]``.
"""

from repro.checkers.base import (
    ModuleContext,
    Rule,
    all_rules,
    register,
    rules_by_id,
)
from repro.checkers.driver import (
    check_file,
    check_paths,
    check_source,
    iter_python_files,
    module_name_for,
)
from repro.checkers.findings import Finding
from repro.checkers.suppress import collect_suppressions, is_suppressed

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "check_file",
    "check_paths",
    "check_source",
    "collect_suppressions",
    "is_suppressed",
    "iter_python_files",
    "module_name_for",
    "register",
    "rules_by_id",
]
