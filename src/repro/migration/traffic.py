"""Network-traffic accounting (Figure 10).

Every byte a migration moves is attributed to a category.  The SAS
memory-upload path is tracked too, but flagged local: the paper notes the
shared drive keeps upload traffic off the datacenter network (§4.3), so
Figure 10's breakdown excludes it.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.errors import ConfigError


class TrafficCategory(enum.Enum):
    """Where migration bytes travel and why."""

    #: Live migration of a full VM image (network).
    FULL_MIGRATION = "full_migration"
    #: Partial-VM descriptor push to the consolidation host (network).
    PARTIAL_DESCRIPTOR = "partial_descriptor"
    #: Pages demand-faulted by partial VMs (network).
    ON_DEMAND_PAGES = "on_demand_pages"
    #: Dirty state pushed home at reintegration (network).
    REINTEGRATION = "reintegration"
    #: Remaining image pulled when a partial VM converts to full in place
    #: (network).
    CONVERSION_PULL = "conversion_pull"
    #: Compressed memory image written to the memory server (local SAS).
    MEMORY_UPLOAD_SAS = "memory_upload_sas"

    @property
    def is_network(self) -> bool:
        """True when the bytes cross the datacenter network."""
        return self is not TrafficCategory.MEMORY_UPLOAD_SAS

    @property
    def is_partial_path(self) -> bool:
        """True for categories caused by the partial-migration mechanism."""
        return self in (
            TrafficCategory.PARTIAL_DESCRIPTOR,
            TrafficCategory.ON_DEMAND_PAGES,
            TrafficCategory.REINTEGRATION,
            TrafficCategory.MEMORY_UPLOAD_SAS,
        )


class TrafficLedger:
    """Accumulates transfer volume (MiB) and event counts per category."""

    def __init__(self) -> None:
        self._mib: Dict[TrafficCategory, float] = {
            category: 0.0 for category in TrafficCategory
        }
        self._events: Dict[TrafficCategory, int] = {
            category: 0 for category in TrafficCategory
        }

    def add(self, category: TrafficCategory, mib: float) -> None:
        """Record one transfer of ``mib`` MiB."""
        if mib < 0.0:
            raise ConfigError(f"traffic must be non-negative, got {mib}")
        self._mib[category] += mib
        self._events[category] += 1

    def mib(self, category: TrafficCategory) -> float:
        return self._mib[category]

    def events(self, category: TrafficCategory) -> int:
        return self._events[category]

    def network_total_mib(self) -> float:
        """All bytes that crossed the datacenter network."""
        return sum(
            volume
            for category, volume in self._mib.items()
            if category.is_network
        )

    def full_path_mib(self) -> float:
        """Traffic attributable to full migrations (incl. conversions)."""
        return (
            self._mib[TrafficCategory.FULL_MIGRATION]
            + self._mib[TrafficCategory.CONVERSION_PULL]
        )

    def partial_path_mib(self) -> float:
        """Network traffic attributable to the partial-migration path."""
        return sum(
            volume
            for category, volume in self._mib.items()
            if category.is_partial_path and category.is_network
        )

    def as_dict(self) -> Dict[str, float]:
        """Volumes per category, keyed by category value (for reports)."""
        return {category.value: volume for category, volume in self._mib.items()}

    def merge(self, other: "TrafficLedger") -> None:
        """Fold another ledger's volumes and counts into this one."""
        for category in TrafficCategory:
            self._mib[category] += other._mib[category]
            self._events[category] += other._events[category]

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{category.value}={volume:.0f}"
            for category, volume in self._mib.items()
            if volume > 0.0
        )
        return f"<TrafficLedger MiB: {parts or 'empty'}>"
