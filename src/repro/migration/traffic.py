"""Network-traffic accounting (Figure 10).

Every byte a migration moves is attributed to a category.  The SAS
memory-upload path is tracked too, but flagged local: the paper notes the
shared drive keeps upload traffic off the datacenter network (§4.3), so
Figure 10's breakdown excludes it.
"""

from __future__ import annotations

import enum
from typing import Dict, List

from repro.errors import ConfigError


class TrafficCategory(enum.Enum):
    """Where migration bytes travel and why."""

    #: Live migration of a full VM image (network).
    FULL_MIGRATION = "full_migration"
    #: Partial-VM descriptor push to the consolidation host (network).
    PARTIAL_DESCRIPTOR = "partial_descriptor"
    #: Pages demand-faulted by partial VMs (network).
    ON_DEMAND_PAGES = "on_demand_pages"
    #: Dirty state pushed home at reintegration (network).
    REINTEGRATION = "reintegration"
    #: Remaining image pulled when a partial VM converts to full in place
    #: (network).
    CONVERSION_PULL = "conversion_pull"
    #: Compressed memory image written to the memory server (local SAS).
    MEMORY_UPLOAD_SAS = "memory_upload_sas"

    @property
    def is_network(self) -> bool:
        """True when the bytes cross the datacenter network."""
        return self is not TrafficCategory.MEMORY_UPLOAD_SAS

    @property
    def is_partial_path(self) -> bool:
        """True for categories caused by the partial-migration mechanism."""
        return self in (
            TrafficCategory.PARTIAL_DESCRIPTOR,
            TrafficCategory.ON_DEMAND_PAGES,
            TrafficCategory.REINTEGRATION,
            TrafficCategory.MEMORY_UPLOAD_SAS,
        )


# Dense position of each member in definition order.  The ledger's hot
# ``add`` path indexes flat lists with it, replacing two enum hashes per
# recorded transfer with plain list indexing.
for _index, _category in enumerate(TrafficCategory):
    _category.ledger_index = _index
del _index, _category

_CATEGORIES = tuple(TrafficCategory)


class TrafficLedger:
    """Accumulates transfer volume (MiB) and event counts per category.

    Storage is a pair of flat lists indexed by ``ledger_index``; all
    iteration (totals, ``as_dict``, ``merge``) walks the categories in
    definition order, matching the dict-backed layout this replaces.
    """

    __slots__ = ("_mib", "_events")

    def __init__(self) -> None:
        self._mib: List[float] = [0.0] * len(_CATEGORIES)
        self._events: List[int] = [0] * len(_CATEGORIES)

    def add(self, category: TrafficCategory, mib: float) -> None:
        """Record one transfer of ``mib`` MiB."""
        if mib < 0.0:
            raise ConfigError(f"traffic must be non-negative, got {mib}")
        index = category.ledger_index
        self._mib[index] += mib
        self._events[index] += 1

    def mib(self, category: TrafficCategory) -> float:
        return self._mib[category.ledger_index]

    def events(self, category: TrafficCategory) -> int:
        return self._events[category.ledger_index]

    def network_total_mib(self) -> float:
        """All bytes that crossed the datacenter network."""
        return sum(
            self._mib[category.ledger_index]
            for category in _CATEGORIES
            if category.is_network
        )

    def full_path_mib(self) -> float:
        """Traffic attributable to full migrations (incl. conversions)."""
        return (
            self._mib[TrafficCategory.FULL_MIGRATION.ledger_index]
            + self._mib[TrafficCategory.CONVERSION_PULL.ledger_index]
        )

    def partial_path_mib(self) -> float:
        """Network traffic attributable to the partial-migration path."""
        return sum(
            self._mib[category.ledger_index]
            for category in _CATEGORIES
            if category.is_partial_path and category.is_network
        )

    def as_dict(self) -> Dict[str, float]:
        """Volumes per category, keyed by category value (for reports)."""
        return {
            category.value: self._mib[category.ledger_index]
            for category in _CATEGORIES
        }

    def merge(self, other: "TrafficLedger") -> None:
        """Fold another ledger's volumes and counts into this one."""
        for index in range(len(_CATEGORIES)):
            self._mib[index] += other._mib[index]
            self._events[index] += other._events[index]

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{category.value}={self._mib[category.ledger_index]:.0f}"
            for category in _CATEGORIES
            if self._mib[category.ledger_index] > 0.0
        )
        return f"<TrafficLedger MiB: {parts or 'empty'}>"
