"""Pre-copy live migration model (Clark et al. [6]).

Pre-copy iteratively copies memory while the VM keeps running at the
source: round one sends the whole image; each later round resends pages
dirtied during the previous round.  When the residual dirty set is small
enough (or the round budget is exhausted), the VM is paused and the rest
is copied in one stop-and-copy step.

With a constant dirty rate ``d`` (MiB/s) and link bandwidth ``b``, round
``k`` transfers ``M * (d/b)^k`` — a geometric series, convergent while
``d < b``.  Idle desktop VMs dirty slowly, so the model lands close to
``M/b`` plus protocol overhead, matching the prototype's measured 41 s
for a 4 GiB VM over GigE (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError, MigrationError
from repro.memserver.link import GIGE_LINK, TransferLink


@dataclass(frozen=True)
class PreCopyResult:
    """Outcome of one modeled pre-copy migration."""

    total_s: float
    downtime_s: float
    transferred_mib: float
    rounds: List[float]  # MiB sent per iterative round (excl. stop-and-copy)
    stop_and_copy_mib: float

    @property
    def round_count(self) -> int:
        return len(self.rounds)


@dataclass(frozen=True)
class PreCopyModel:
    """Parameters of the pre-copy protocol."""

    link: TransferLink = GIGE_LINK
    #: Stop iterating once the dirty residue falls below this.
    stop_threshold_mib: float = 64.0
    #: Upper bound on iterative rounds before forcing stop-and-copy.
    max_rounds: int = 8
    #: Fixed protocol overhead: connection setup, device state, page-table
    #: rewrites at the destination.
    setup_s: float = 2.0

    def __post_init__(self) -> None:
        if self.stop_threshold_mib <= 0.0:
            raise ConfigError("stop_threshold_mib must be positive")
        if self.max_rounds < 1:
            raise ConfigError("max_rounds must be >= 1")
        if self.setup_s < 0.0:
            raise ConfigError("setup_s must be non-negative")

    def migrate(self, memory_mib: float, dirty_rate_mib_s: float) -> PreCopyResult:
        """Model one migration of ``memory_mib`` at the given dirty rate."""
        if memory_mib <= 0.0:
            raise MigrationError("memory size must be positive")
        if dirty_rate_mib_s < 0.0:
            raise MigrationError("dirty rate must be non-negative")
        bandwidth = self.link.bandwidth_mib_per_s
        if dirty_rate_mib_s >= bandwidth:
            # Divergent: every round redirties faster than we copy.  Force
            # a single round then stop-and-copy the whole dirty set.
            first_round_s = memory_mib / bandwidth
            dirty = min(memory_mib, dirty_rate_mib_s * first_round_s)
            downtime = dirty / bandwidth
            total = self.setup_s + first_round_s + downtime
            return PreCopyResult(
                total_s=total,
                downtime_s=downtime,
                transferred_mib=memory_mib + dirty,
                rounds=[memory_mib],
                stop_and_copy_mib=dirty,
            )

        rounds: List[float] = []
        to_send = memory_mib
        elapsed = 0.0
        for _ in range(self.max_rounds):
            rounds.append(to_send)
            round_s = to_send / bandwidth
            elapsed += round_s
            to_send = min(memory_mib, dirty_rate_mib_s * round_s)
            if to_send <= self.stop_threshold_mib:
                break
        downtime = to_send / bandwidth
        total = self.setup_s + elapsed + downtime
        return PreCopyResult(
            total_s=total,
            downtime_s=downtime,
            transferred_mib=sum(rounds) + to_send,
            rounds=rounds,
            stop_and_copy_mib=to_send,
        )
