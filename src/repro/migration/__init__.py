"""VM migration machinery.

Three migration mechanisms (§2, §4.2):

* **pre-copy live migration** — iterative full-image copy; what Oasis
  uses for active VMs because it degrades the workload least;
* **post-copy live migration** — modeled for completeness/ablations;
* **partial migration** — suspend, upload memory to the memory server,
  push the descriptor, fault pages on demand; plus **reintegration**
  (dirty pages return to the home's full image).

The cluster simulation consumes the scalar :class:`MigrationCostModel`
(the constants of §5.1); the prototype micro-benchmarks use the detailed
pre-copy/partial pipelines.
"""

from repro.migration.costs import MigrationCostModel
from repro.migration.traffic import TrafficCategory, TrafficLedger
from repro.migration.precopy import PreCopyModel, PreCopyResult
from repro.migration.postcopy import PostCopyModel, PostCopyResult
from repro.migration.scheduler import HostBusyScheduler

__all__ = [
    "MigrationCostModel",
    "TrafficCategory",
    "TrafficLedger",
    "PreCopyModel",
    "PreCopyResult",
    "PostCopyModel",
    "PostCopyResult",
    "HostBusyScheduler",
]
