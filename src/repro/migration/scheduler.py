"""Per-host serialization of migration work.

Each host has a bottleneck resource per migration direction: the SAS
path to its memory server serializes partial-migration uploads out of a
home host, and the NIC serializes bulk image transfers.  Migrations
pipeline, so what serializes is each operation's *occupancy* of the
bottleneck (upload time, wire time), which is much shorter than its
end-to-end *latency* (which includes destination-side VM creation,
resume handshakes, and protocol round trips).

The scheduler therefore tracks two horizons per host:

* ``busy_until`` — when the bottleneck frees up; the next operation on
  this host starts then.  Queueing on this horizon is what produces
  resume-storm delays (the Figure 11 tail).
* ``release_after`` — when the last operation's full latency completes;
  a host must not power down before this.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Tuple

from repro.errors import SimulationError


class HostBusyScheduler:
    """Tracks per-host busy/release horizons and serializes operations."""

    def __init__(self) -> None:
        self._busy_until: Dict[Hashable, float] = {}
        self._release_after: Dict[Hashable, float] = {}

    def busy_until(self, host_id: Hashable) -> float:
        """Time at which ``host_id``'s bottleneck frees up (0 if idle)."""
        return self._busy_until.get(host_id, 0.0)

    def release_after(self, host_id: Hashable) -> float:
        """Time after which no operation involving ``host_id`` is still
        in flight (safe to power down)."""
        return max(
            self._release_after.get(host_id, 0.0),
            self._busy_until.get(host_id, 0.0),
        )

    def earliest_start(self, host_ids: Iterable[Hashable], now: float) -> float:
        """Earliest time an operation involving ``host_ids`` can start."""
        start = now
        for host_id in host_ids:
            horizon = self._busy_until.get(host_id, 0.0)
            if horizon > start:
                start = horizon
        return start

    def reserve(
        self,
        host_ids: Iterable[Hashable],
        now: float,
        latency_s: float,
        occupancy_s: Optional[float] = None,
        not_before: float = 0.0,
    ) -> Tuple[float, float]:
        """Queue an operation on all ``host_ids``; returns (start, end).

        The operation starts once every involved host's bottleneck is
        free — and no earlier than ``not_before`` (e.g. a VM still in
        flight from a previous migration).  It completes (``end``) after
        ``latency_s``; the hosts' bottlenecks are occupied for
        ``occupancy_s`` (defaults to the full latency).
        """
        if latency_s < 0.0:
            raise SimulationError(f"latency must be >= 0, got {latency_s}")
        if occupancy_s is None:
            occupancy_s = latency_s
        elif occupancy_s < 0.0:
            raise SimulationError(f"occupancy must be >= 0, got {occupancy_s}")
        busy = self._busy_until
        release = self._release_after
        ids = list(host_ids)
        start = now if now >= not_before else not_before
        for host_id in ids:
            horizon = busy.get(host_id, 0.0)
            if horizon > start:
                start = horizon
        end = start + latency_s
        busy_end = start + occupancy_s
        for host_id in ids:
            busy[host_id] = busy_end
            if end > release.get(host_id, 0.0):
                release[host_id] = end
        return start, end

    def reserve_one(
        self,
        host_id: Hashable,
        now: float,
        latency_s: float,
        occupancy_s: Optional[float] = None,
        not_before: float = 0.0,
    ) -> Tuple[float, float]:
        """:meth:`reserve` specialized to a single resource.

        Every simulation-engine reservation involves exactly one
        bottleneck resource; this path skips the list copy and the
        per-id loops.  Arithmetic and horizon updates are identical to
        ``reserve([host_id], ...)``.
        """
        if latency_s < 0.0:
            raise SimulationError(f"latency must be >= 0, got {latency_s}")
        if occupancy_s is None:
            occupancy_s = latency_s
        elif occupancy_s < 0.0:
            raise SimulationError(f"occupancy must be >= 0, got {occupancy_s}")
        busy = self._busy_until
        start = now if now >= not_before else not_before
        horizon = busy.get(host_id, 0.0)
        if horizon > start:
            start = horizon
        end = start + latency_s
        busy[host_id] = start + occupancy_s
        release = self._release_after
        if end > release.get(host_id, 0.0):
            release[host_id] = end
        return start, end

    def extend(self, host_id: Hashable, until: float) -> None:
        """Push a host's busy horizon to at least ``until`` (e.g. while it
        completes a power transition)."""
        if until > self._busy_until.get(host_id, 0.0):
            self._busy_until[host_id] = until

    def clear_before(self, time: float) -> None:
        """Drop horizons that already passed (bookkeeping hygiene)."""
        for horizons in (self._busy_until, self._release_after):
            expired = [
                host_id
                for host_id, horizon in horizons.items()
                if horizon <= time
            ]
            for host_id in expired:
                del horizons[host_id]
