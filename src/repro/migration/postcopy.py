"""Post-copy live migration model (Hines & Gopalan [11]).

Post-copy suspends the VM immediately, ships only the execution context,
and resumes at the destination; memory is pushed in the background while
missing pages fault in over the network.  Oasis does *not* use post-copy
for active VMs (pre-copy degrades them less, §3.1) — this model exists
for the background discussion and for ablation benches comparing the
mechanisms, and because partial migration is post-copy's demand-fetch
half without the background push.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, MigrationError
from repro.memserver.link import GIGE_LINK, TransferLink


@dataclass(frozen=True)
class PostCopyResult:
    """Outcome of one modeled post-copy migration."""

    #: VM pause before it resumes at the destination (context transfer).
    downtime_s: float
    #: Time until the full image is resident at the destination.
    completion_s: float
    #: Total bytes moved (full image + descriptor; faulted pages are part
    #: of the image push in this model, not extra volume).
    transferred_mib: float
    #: Number of demand faults serviced before the push caught up.
    demand_faults: int
    #: Mean stall per demand fault, seconds.
    mean_fault_stall_s: float


@dataclass(frozen=True)
class PostCopyModel:
    """Parameters of the post-copy protocol."""

    link: TransferLink = GIGE_LINK
    #: Execution context + device state shipped before resume.
    context_mib: float = 8.0
    #: Round-trip latency of one remote page fault.
    fault_rtt_s: float = 0.0008
    #: Fraction of the working set the VM touches before the background
    #: push delivers it (adaptive pre-paging shrinks this; 1.0 = naive).
    prepaging_miss_factor: float = 0.35

    def __post_init__(self) -> None:
        if self.context_mib <= 0.0:
            raise ConfigError("context_mib must be positive")
        if self.fault_rtt_s < 0.0:
            raise ConfigError("fault_rtt_s must be non-negative")
        if not 0.0 <= self.prepaging_miss_factor <= 1.0:
            raise ConfigError("prepaging_miss_factor must be in [0, 1]")

    def migrate(
        self, memory_mib: float, working_set_mib: float
    ) -> PostCopyResult:
        """Model one post-copy migration.

        ``working_set_mib`` is the memory the VM actively touches while
        the push is in flight; a fraction of it (``prepaging_miss_factor``)
        misses and stalls on network faults.
        """
        if memory_mib <= 0.0:
            raise MigrationError("memory size must be positive")
        if not 0.0 <= working_set_mib <= memory_mib:
            raise MigrationError("working set must be within the allocation")
        bandwidth = self.link.bandwidth_mib_per_s
        downtime = self.link.transfer_s(self.context_mib)
        push_s = memory_mib / bandwidth
        missed_mib = working_set_mib * self.prepaging_miss_factor
        faults = int(missed_mib * 256)  # 4 KiB pages per MiB
        mean_stall = self.fault_rtt_s
        completion = downtime + push_s + faults * self.fault_rtt_s
        return PostCopyResult(
            downtime_s=downtime,
            completion_s=completion,
            transferred_mib=memory_mib + self.context_mib,
            demand_faults=faults,
            mean_fault_stall_s=mean_stall,
        )
