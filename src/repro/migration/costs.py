"""Scalar migration cost model used by the cluster simulation (§5.1).

The paper's simulator plugs in the conservative constants measured on the
prototype: fully migrating a 4 GiB VM over 10 GigE takes 10 s (after
Deshpande et al. [7]); partially migrating an idle VM — including the
memory upload to the memory server — takes 7.2 s; resuming/reintegrating
a partial VM takes 3.7 s.  Traffic volumes come from §4.4.3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import cos as _cos, log as _log, sin as _sin, sqrt as _sqrt
from math import tau as _TWOPI

from repro.errors import ConfigError
from repro.units import DEFAULT_VM_MEMORY_MIB, TEN_GIGE_MIB_PER_S


@dataclass(frozen=True)
class MigrationCostModel:
    """Latencies (seconds) and traffic volumes (MiB) for cluster runs."""

    #: Live (pre-copy) migration of one full VM over the rack fabric.
    full_migration_s: float = 10.0
    #: Partial migration of one idle VM, including the memory upload to
    #: the memory server and the descriptor push.
    partial_migration_s: float = 7.2
    #: Reintegrating a partial VM into the full image at its home.
    reintegration_s: float = 3.7
    #: Converting a partial VM to full in place: pulling the remaining
    #: ~4 GiB image from the home's memory server over 10 GigE.
    inplace_conversion_s: float = DEFAULT_VM_MEMORY_MIB / TEN_GIGE_MIB_PER_S

    # Migrations pipeline: only each operation's occupancy of the
    # bottleneck resource serializes at a host, while the end-to-end
    # latency above includes handshakes and destination-side work.
    #: SAS occupancy of the source's upload path per partial migration
    #: (the prototype's differential upload time, §4.4.2).
    partial_occupancy_s: float = 2.2
    #: NIC occupancy per full migration (~4 GiB of wire time at 10 GigE).
    full_occupancy_s: float = DEFAULT_VM_MEMORY_MIB / TEN_GIGE_MIB_PER_S
    #: Receive-side occupancy per reintegration at the woken home:
    #: ~175 MiB of dirty state plus the page-table merge.  Resume storms
    #: queue on this, producing the paper's ~19 s 99.99th percentile.
    reintegration_occupancy_s: float = 0.5
    #: Relocating a partial VM between consolidation hosts: only the
    #: descriptor and the resident working set move (the full image
    #: stays at the home's memory server), so this is far cheaper than a
    #: fresh partial migration.
    partial_relocation_s: float = 2.0
    relocation_occupancy_s: float = 0.5
    #: VM descriptor (page tables, context, configuration) pushed to the
    #: consolidation host at partial migration (16.0 +/- 0.5 MiB).
    descriptor_mib_mean: float = 16.0
    descriptor_mib_std: float = 0.5
    #: Pages demand-faulted during one consolidation episode
    #: (56.9 +/- 7.9 MiB).
    on_demand_mib_mean: float = 56.9
    on_demand_mib_std: float = 7.9
    #: Dirty memory pushed home at reintegration (175.3 +/- 49.3 MiB).
    reintegration_mib_mean: float = 175.3
    reintegration_mib_std: float = 49.3
    #: Compressed memory written to the memory server over the local SAS
    #: link per partial migration.  The prototype's differential upload
    #: measured 2.2 s at 128 MiB/s ≈ 281 MiB (§4.4.2); this traffic never
    #: touches the datacenter network.
    sas_upload_mib_mean: float = 281.0
    sas_upload_mib_std: float = 60.0

    def __post_init__(self) -> None:
        for name in (
            "full_migration_s",
            "partial_migration_s",
            "reintegration_s",
            "inplace_conversion_s",
            "descriptor_mib_mean",
            "on_demand_mib_mean",
            "reintegration_mib_mean",
        ):
            if getattr(self, name) <= 0.0:
                raise ConfigError(f"{name} must be positive")
        for name in (
            "descriptor_mib_std",
            "on_demand_mib_std",
            "reintegration_mib_std",
            "sas_upload_mib_std",
            "partial_occupancy_s",
            "full_occupancy_s",
            "reintegration_occupancy_s",
            "partial_relocation_s",
            "relocation_occupancy_s",
        ):
            if getattr(self, name) < 0.0:
                raise ConfigError(f"{name} must be non-negative")

    # -- traffic sampling ----------------------------------------------
    #
    # Each sampler draws a truncated Gaussian.  The samplers sit on the
    # simulation's per-migration hot path (tens of thousands of draws per
    # simulated day), so the draw inlines ``random.Random.gauss`` — the
    # Box-Muller pair algorithm, including its ``gauss_next`` cache —
    # rather than calling through it; the values and the stream position
    # are bit-for-bit those of ``_positive_gauss`` (kept below as the
    # reference implementation).

    def sample_descriptor_mib(self, rng: random.Random) -> float:
        z = rng.gauss_next
        rng.gauss_next = None
        if z is None:
            uniform01 = rng.random
            x2pi = uniform01() * _TWOPI
            g2rad = _sqrt(-2.0 * _log(1.0 - uniform01()))
            z = _cos(x2pi) * g2rad
            rng.gauss_next = _sin(x2pi) * g2rad
        mean = self.descriptor_mib_mean
        value = mean + z * self.descriptor_mib_std
        floor = 0.1 * mean
        return value if value >= floor else floor

    def sample_on_demand_mib(self, rng: random.Random) -> float:
        z = rng.gauss_next
        rng.gauss_next = None
        if z is None:
            uniform01 = rng.random
            x2pi = uniform01() * _TWOPI
            g2rad = _sqrt(-2.0 * _log(1.0 - uniform01()))
            z = _cos(x2pi) * g2rad
            rng.gauss_next = _sin(x2pi) * g2rad
        mean = self.on_demand_mib_mean
        value = mean + z * self.on_demand_mib_std
        floor = 0.1 * mean
        return value if value >= floor else floor

    def sample_reintegration_mib(self, rng: random.Random) -> float:
        z = rng.gauss_next
        rng.gauss_next = None
        if z is None:
            uniform01 = rng.random
            x2pi = uniform01() * _TWOPI
            g2rad = _sqrt(-2.0 * _log(1.0 - uniform01()))
            z = _cos(x2pi) * g2rad
            rng.gauss_next = _sin(x2pi) * g2rad
        mean = self.reintegration_mib_mean
        value = mean + z * self.reintegration_mib_std
        floor = 0.1 * mean
        return value if value >= floor else floor

    def sample_sas_upload_mib(self, rng: random.Random) -> float:
        z = rng.gauss_next
        rng.gauss_next = None
        if z is None:
            uniform01 = rng.random
            x2pi = uniform01() * _TWOPI
            g2rad = _sqrt(-2.0 * _log(1.0 - uniform01()))
            z = _cos(x2pi) * g2rad
            rng.gauss_next = _sin(x2pi) * g2rad
        mean = self.sas_upload_mib_mean
        value = mean + z * self.sas_upload_mib_std
        floor = 0.1 * mean
        return value if value >= floor else floor

    @staticmethod
    def _positive_gauss(rng: random.Random, mean: float, std: float) -> float:
        """Reference implementation of the samplers' inlined draw."""
        value = rng.gauss(mean, std)
        # Traffic volumes are strictly positive; resample the rare
        # negative tail by clamping to a tenth of the mean.
        return max(value, 0.1 * mean)
