"""Control-plane message types (§4.1-4.2).

The manager's RPC surface, the agents' statistics reports, and the
power-management side channel (Wake-on-LAN), as typed messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigError


class MigrationType(enum.Enum):
    """The ``migration type`` field of a manager order (§4.1)."""

    PARTIAL = "partial"
    FULL = "full"


@dataclass(frozen=True)
class CreateVmCall:
    """Client -> manager: create a VM from a configuration file path."""

    config_path: str

    def __post_init__(self) -> None:
        if not self.config_path:
            raise ConfigError("a create call needs a configuration path")


@dataclass(frozen=True)
class MigrationOrder:
    """Manager -> agent: one ``<vmid, migration type, destination>``
    tuple (§4.1)."""

    vmid: int
    migration_type: MigrationType
    destination: int
    #: Sampled idle working set for partial migrations, MiB.
    working_set_mib: Optional[float] = None

    def __post_init__(self) -> None:
        if self.migration_type is MigrationType.PARTIAL:
            if self.working_set_mib is None or self.working_set_mib <= 0.0:
                raise ConfigError(
                    f"VM {self.vmid}: partial order needs a working set"
                )


@dataclass(frozen=True)
class SuspendOrder:
    """Manager -> agent: suspend the host into sleep mode once its
    migrations complete (§4.1)."""

    host_id: int


@dataclass(frozen=True)
class WakeOnLan:
    """Manager -> host NIC: wake a sleeping host before placing a VM on
    it (§4.1)."""

    host_id: int


@dataclass(frozen=True)
class VmStats:
    """Per-VM statistics inside an agent report (§4.1)."""

    vmid: int
    memory_allocation_mib: float
    resident_mib: float
    active: bool
    #: Page dirtying rate, the §3.1 idleness signal the hypervisor can
    #: observe.
    dirty_rate_mib_s: float = 0.0


@dataclass(frozen=True)
class StatsReport:
    """Agent -> manager: periodic host and VM statistics (§4.1)."""

    host_id: int
    time_s: float
    memory_used_mib: float
    memory_capacity_mib: float
    cpu_utilization: float
    io_utilization: float
    vms: Dict[int, VmStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.memory_capacity_mib <= 0.0:
            raise ConfigError("capacity must be positive")
        if not 0.0 <= self.cpu_utilization <= 1.0:
            raise ConfigError("cpu utilization must be in [0, 1]")

    @property
    def memory_utilization(self) -> float:
        return self.memory_used_mib / self.memory_capacity_mib


@dataclass(frozen=True)
class Ack:
    """Generic success response carrying an optional payload."""

    request: str
    payload: object = None


@dataclass(frozen=True)
class Nack:
    """Generic failure response with a reason."""

    request: str
    reason: str
