"""A complete in-process deployment: manager, agents, bus, and a client.

Wires the §4 prototype together for protocol-level experiments and the
``examples/control_plane.py`` walk-through: real hosts owned by real
agents, a manager daemon that only sees messages, and a client facade
for creating VMs from configuration files on a (dict-backed) network
storage.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.host import Host, HostRole
from repro.core.policies import FULL_TO_PARTIAL, PolicySpec
from repro.deploy.agent import HostAgent
from repro.deploy.bus import MessageBus
from repro.deploy.manager import MANAGER_NAME, ClusterManagerDaemon
from repro.deploy.messages import Ack, CreateVmCall, Nack
from repro.deploy.vmconfig import VmConfigFile
from repro.errors import ConfigError
from repro.migration.costs import MigrationCostModel
from repro.simulator.engine import Simulator
from repro.units import DEFAULT_VM_MEMORY_MIB


class Client:
    """A management client on the bus (the RPC caller of §4.1)."""

    def __init__(self, bus: MessageBus, name: str = "client") -> None:
        self.endpoint = bus.register(name, self._on_message)
        self.acks: List[Ack] = []
        self.nacks: List[Nack] = []

    def _on_message(self, source, message) -> None:
        if isinstance(message, Ack):
            self.acks.append(message)
        elif isinstance(message, Nack):
            self.nacks.append(message)

    def create_vm(self, config_path: str) -> None:
        """Issue a create call for a configuration file path (§4.1)."""
        self.endpoint.send(MANAGER_NAME, CreateVmCall(config_path))


class Deployment:
    """One rack's worth of prototype control plane."""

    def __init__(
        self,
        home_hosts: int = 2,
        consolidation_hosts: int = 1,
        host_capacity_mib: Optional[float] = None,
        policy: PolicySpec = FULL_TO_PARTIAL,
        planning_interval_s: float = 300.0,
        costs: Optional[MigrationCostModel] = None,
        vms_per_host_hint: int = 4,
        seed: int = 0,
    ) -> None:
        if home_hosts < 1 or consolidation_hosts < 1:
            raise ConfigError("a deployment needs hosts of both roles")
        capacity = (
            host_capacity_mib
            if host_capacity_mib is not None
            else vms_per_host_hint * DEFAULT_VM_MEMORY_MIB
        )
        self.sim = Simulator()
        self.bus = MessageBus(self.sim)
        self.costs = costs if costs is not None else MigrationCostModel()

        self.hosts: Dict[int, Host] = {}
        self.agents: Dict[int, HostAgent] = {}
        next_id = 0
        for _ in range(home_hosts):
            host = Host(next_id, HostRole.COMPUTE, capacity)
            self._add_host(host)
            next_id += 1
        consolidation_ids = []
        for _ in range(consolidation_hosts):
            host = Host(
                next_id, HostRole.CONSOLIDATION, capacity,
                memory_server_enabled=False,
            )
            self._add_host(host)
            # Consolidation hosts sleep by default (§3.1).
            host.begin_suspend()
            host.complete_suspend()
            consolidation_ids.append(next_id)
            next_id += 1

        #: The NFS share of §4.1 (path -> parsed configuration file).
        self.network_storage: Dict[str, VmConfigFile] = {}
        self.manager = ClusterManagerDaemon(
            sim=self.sim,
            bus=self.bus,
            home_host_ids=list(range(home_hosts)),
            consolidation_host_ids=consolidation_ids,
            host_capacity_mib=capacity,
            network_storage=self.network_storage,
            policy=policy,
            planning_interval_s=planning_interval_s,
            seed=seed,
        )
        self.client = Client(self.bus)

    def _add_host(self, host: Host) -> None:
        self.hosts[host.host_id] = host
        self.agents[host.host_id] = HostAgent(
            sim=self.sim, bus=self.bus, host=host,
            costs=self.costs,
        )

    # -- conveniences ------------------------------------------------------

    def publish_config(self, path: str, config: VmConfigFile) -> None:
        """Put a VM configuration file on the network storage."""
        self.network_storage[path] = config

    def create_vm(self, config: VmConfigFile, path: Optional[str] = None):
        """Publish a configuration and issue the create call."""
        path = path if path is not None else f"/nfs/vms/{config.vmid_str}.cfg"
        self.publish_config(path, config)
        self.client.create_vm(path)

    def set_vm_activity(self, vmid: int, active: bool) -> None:
        """Drive a VM's user activity at whichever host runs it."""
        for agent in self.agents.values():
            if agent.host.has_vm(vmid):
                agent.set_vm_activity(vmid, active)
                return
        raise ConfigError(f"no host currently runs VM {vmid}")

    def run_for(self, seconds: float) -> None:
        """Advance the whole deployment."""
        self.sim.advance(seconds)

    def find_vm_host(self, vmid: int) -> Optional[Host]:
        for host in self.hosts.values():
            if host.has_vm(vmid):
                return host
        return None

    def powered_hosts(self) -> List[int]:
        return [h.host_id for h in self.hosts.values() if h.is_powered]

    def check_consistency(self) -> None:
        """The manager's shadow must agree with ground truth about VM
        placement and host power (used by tests; tolerant of messages
        still in flight only if the caller quiesced the bus first)."""
        for vmid, shadow_vm in self.manager.inventory.vms.items():
            real_host = self.find_vm_host(vmid)
            assert real_host is not None, f"VM {vmid} vanished"
            assert real_host.host_id == shadow_vm.host_id, (
                f"VM {vmid}: manager thinks host {shadow_vm.host_id}, "
                f"actually on {real_host.host_id}"
            )
        for host_id, host in self.hosts.items():
            shadow = self.manager.inventory.cluster.host(host_id)
            assert host.is_powered == shadow.is_powered, (
                f"host {host_id}: manager thinks "
                f"{shadow.power_state.value}, actually {host.power_state.value}"
            )
