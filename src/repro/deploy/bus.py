"""An in-process message bus with modeled network latency.

Endpoints (the manager daemon, each host agent, each host's NIC for
Wake-on-LAN) register by name; messages are delivered as discrete
events after a configurable latency, so control-plane chatter is
ordered and timed on the same clock as everything else.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Tuple

from repro.errors import ConfigError, SimulationError
from repro.simulator.engine import Simulator

Handler = Callable[[Hashable, object], None]


class Endpoint:
    """One addressable participant on the bus."""

    def __init__(self, bus: "MessageBus", name: Hashable) -> None:
        self._bus = bus
        self.name = name

    def send(self, destination: Hashable, message: object) -> None:
        """Send a message; it arrives after the bus latency."""
        self._bus.post(self.name, destination, message)


class MessageBus:
    """Routes messages between named endpoints with delivery latency."""

    def __init__(self, sim: Simulator, latency_s: float = 0.0005) -> None:
        if latency_s < 0.0:
            raise ConfigError("bus latency must be non-negative")
        self._sim = sim
        self.latency_s = latency_s
        self._handlers: Dict[Hashable, Handler] = {}
        #: Delivered-message log for tests and debugging:
        #: (time, source, destination, message).
        self.log: List[Tuple[float, Hashable, Hashable, object]] = []
        self.log_enabled = True

    def register(self, name: Hashable, handler: Handler) -> Endpoint:
        """Attach a handler for messages addressed to ``name``."""
        if name in self._handlers:
            raise ConfigError(f"endpoint {name!r} is already registered")
        self._handlers[name] = handler
        return Endpoint(self, name)

    def post(
        self, source: Hashable, destination: Hashable, message: object
    ) -> None:
        """Queue a message for delivery after the bus latency."""
        if destination not in self._handlers:
            raise SimulationError(
                f"no endpoint {destination!r} on the bus "
                f"(message from {source!r}: {message!r})"
            )
        self._sim.schedule(
            self.latency_s,
            self._deliver,
            source,
            destination,
            message,
            label=f"msg:{source}->{destination}",
        )

    def _deliver(
        self, source: Hashable, destination: Hashable, message: object
    ) -> None:
        handler = self._handlers.get(destination)
        if handler is None:
            raise SimulationError(
                f"endpoint {destination!r} vanished before delivery"
            )
        if self.log_enabled:
            self.log.append((self._sim.now, source, destination, message))
        handler(source, message)

    def messages_to(self, destination: Hashable) -> List[object]:
        """All messages delivered to one endpoint (from the log)."""
        return [
            message
            for _time, _source, dest, message in self.log
            if dest == destination
        ]

    def messages_of_type(self, message_type) -> List[object]:
        """All delivered messages of a given class (from the log)."""
        return [
            message
            for _time, _source, _dest, message in self.log
            if isinstance(message, message_type)
        ]
