"""The control plane of the paper's prototype (§4.1-4.2).

Where :mod:`repro.farm` executes policy decisions directly for speed,
this package reproduces the *architecture* of the prototype: a cluster
manager daemon that talks to per-host agents over an RPC bus, clients
that create VMs from configuration files, periodic statistics reports,
``<vmid, migration type, destination>`` migration orders, suspend
orders, and Wake-on-LAN — all running on the discrete-event kernel with
modeled message latency.

Typical use (see ``examples/control_plane.py``)::

    deployment = Deployment(hosts=3, consolidation_hosts=1)
    vmid = deployment.client.create_vm(VmConfigFile(...))
    deployment.run_for(3600.0)
"""

from repro.deploy.messages import (
    CreateVmCall,
    MigrationOrder,
    MigrationType,
    StatsReport,
    SuspendOrder,
    VmStats,
    WakeOnLan,
)
from repro.deploy.vmconfig import VmConfigFile
from repro.deploy.bus import MessageBus, Endpoint
from repro.deploy.agent import HostAgent
from repro.deploy.manager import ClusterManagerDaemon
from repro.deploy.deployment import Deployment

__all__ = [
    "CreateVmCall",
    "MigrationOrder",
    "MigrationType",
    "StatsReport",
    "SuspendOrder",
    "VmStats",
    "WakeOnLan",
    "VmConfigFile",
    "MessageBus",
    "Endpoint",
    "HostAgent",
    "ClusterManagerDaemon",
    "Deployment",
]
