"""The host agent (§4.2).

A user-level process on each host's administrative domain that performs
host power management (ACPI), host-to-host VM migration, and statistics
collection.  Here it is an endpoint on the control-plane bus that owns
one :class:`~repro.cluster.host.Host`:

* ``CreateVmOrder`` — start a VM from a parsed configuration;
* ``MigrationOrder`` — partial- or full-migrate one of its VMs: the
  agent suspends the VM, uploads memory to its memory server (partial)
  or streams the image (full), and pushes a descriptor to the
  destination agent, which instantiates the VM and acknowledges;
* ``ReintegrationOrder`` — push a partial VM's dirty state back to its
  owner (§4.2 "VM reintegration");
* ``SuspendOrder`` — suspend the host once in-flight work completes;
* Wake-on-LAN arrives at the host's NIC endpoint and resumes it.

Timing uses the same :class:`MigrationCostModel` constants as the farm
engine; messages carry the latency of the operation they conclude, so
the protocol's causality is visible on the bus log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.host import Host
from repro.deploy.bus import MessageBus
from repro.deploy.messages import (
    Ack,
    MigrationOrder,
    MigrationType,
    Nack,
    StatsReport,
    SuspendOrder,
    VmStats,
    WakeOnLan,
)
from repro.deploy.vmconfig import VmConfigFile
from repro.errors import CapacityError, MigrationError
from repro.migration.costs import MigrationCostModel
from repro.simulator.engine import Simulator
from repro.vm.machine import VirtualMachine
from repro.vm.state import Residency, VmActivity


@dataclass(frozen=True)
class CreateVmOrder:
    """Manager -> agent: start a VM from this configuration (§4.1)."""

    config: VmConfigFile


@dataclass(frozen=True)
class VmDescriptorPush:
    """Source agent -> destination agent: instantiate a migrated VM.

    Carries the live VM object (standing in for page tables, execution
    context, and configuration) plus how it should land.  For the
    second leg of a FulltoPartial exchange, ``repartialize_to`` asks the
    receiving (home) agent to immediately partial-migrate the VM back
    to the sender with the given working set (§3.2).
    """

    vm: VirtualMachine
    migration_type: MigrationType
    working_set_mib: Optional[float] = None
    repartialize_to: Optional[int] = None
    repartialize_ws_mib: Optional[float] = None


@dataclass(frozen=True)
class ExchangeOrder:
    """Manager -> consolidation agent: swap an idle full VM for a
    partial one (§3.2 FulltoPartial): push it home in full; the home
    agent sends it straight back as a partial VM."""

    vmid: int
    origin_home: int
    working_set_mib: float


@dataclass(frozen=True)
class ConvertInPlaceOrder:
    """Manager -> agent: convert an activating partial VM to a full VM
    where it runs (§3.2): memtap pulls the remaining image from the old
    home's memory server, and this host becomes the new home."""

    vmid: int


@dataclass(frozen=True)
class ImageReleaseNotice:
    """New owner -> old home agent: the full image has been pulled;
    release the memory-server copy (§4.2: "frees all resources
    previously allocated to the VM, including any memory state uploaded
    to the memory server")."""

    vmid: int


@dataclass(frozen=True)
class ReintegrationOrder:
    """Manager -> agent hosting partial VMs: push them back home."""

    vmids: tuple


@dataclass(frozen=True)
class VmStateChangeNotice:
    """Agent -> manager: a local VM crossed the idle/active boundary."""

    host_id: int
    vmid: int
    active: bool


def agent_name(host_id: int) -> str:
    return f"agent-{host_id}"


def nic_name(host_id: int) -> str:
    return f"nic-{host_id}"


class HostAgent:
    """One host's agent process."""

    def __init__(
        self,
        sim: Simulator,
        bus: MessageBus,
        host: Host,
        manager_name: str = "manager",
        costs: Optional[MigrationCostModel] = None,
        stats_interval_s: float = 60.0,
    ) -> None:
        self.sim = sim
        self.host = host
        self.manager_name = manager_name
        self.costs = costs if costs is not None else MigrationCostModel()
        self.stats_interval_s = stats_interval_s
        self.endpoint = bus.register(agent_name(host.host_id), self._on_message)
        #: The host NIC stays reachable while the host sleeps (WoL).
        self.nic = bus.register(nic_name(host.host_id), self._on_nic_message)
        #: VMs this agent owns (§4.2: a partial VM's owner remains the
        #: source agent, which controls its memory server image).
        self.owned_vmids: set = set()
        self._suspend_requested = False
        self._pending_sends = 0
        self.sim.schedule(
            self.stats_interval_s, self._report_stats,
            label=f"stats-{host.host_id}",
        )

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def _on_message(self, source, message) -> None:
        if isinstance(message, CreateVmOrder):
            self._handle_create(source, message)
        elif isinstance(message, MigrationOrder):
            self._handle_migration(source, message)
        elif isinstance(message, ExchangeOrder):
            self._handle_exchange(source, message)
        elif isinstance(message, ConvertInPlaceOrder):
            self._handle_convert(source, message)
        elif isinstance(message, ImageReleaseNotice):
            self.host.remove_served_image(message.vmid)
        elif isinstance(message, ReintegrationOrder):
            self._handle_reintegration(source, message)
        elif isinstance(message, SuspendOrder):
            self._handle_suspend(source)
        elif isinstance(message, VmDescriptorPush):
            self._handle_arrival(source, message)
        else:
            self.endpoint.send(
                source, Nack("unknown", f"unhandled message {message!r}")
            )

    def _on_nic_message(self, source, message) -> None:
        if isinstance(message, WakeOnLan) and self.host.is_sleeping:
            self.host.begin_resume()
            self.sim.schedule(
                2.3, self._complete_resume, label=f"resume-{self.host.host_id}"
            )

    def _complete_resume(self) -> None:
        self.host.complete_resume()

    # -- VM creation ------------------------------------------------------

    def _handle_create(self, source, order: CreateVmOrder) -> None:
        config = order.config
        vm = VirtualMachine(
            config.vmid, self.host.host_id, config.memory_mib
        )
        try:
            self.host.attach(vm)
        except CapacityError as error:
            self.endpoint.send(source, Nack("create", str(error)))
            return
        self.owned_vmids.add(config.vmid)
        self.endpoint.send(source, Ack("create", payload=config.vmid))

    # -- outbound migrations ------------------------------------------------

    def _handle_migration(self, source, order: MigrationOrder) -> None:
        try:
            vm = self.host.get_vm(order.vmid)
        except MigrationError as error:
            self.endpoint.send(source, Nack("migrate", str(error)))
            return
        if order.migration_type is MigrationType.PARTIAL:
            # Suspend the VM, upload its memory to the memory server,
            # then push the descriptor (§4.2).
            latency = self.costs.partial_migration_s
            self.host.detach(vm.vm_id)
            vm.become_partial(order.destination, order.working_set_mib)
            self.host.add_served_image(vm.vm_id)
        else:
            latency = self.costs.full_migration_s
            self.host.detach(vm.vm_id)
            vm.full_migrate(order.destination)
            # Ownership moves with a full migration (§4.2).
            self.owned_vmids.discard(vm.vm_id)
        self._pending_sends += 1
        self.sim.schedule(
            latency,
            self._push_descriptor,
            vm,
            order,
            label=f"migrate-{vm.vm_id}",
        )

    def _push_descriptor(self, vm: VirtualMachine, order: MigrationOrder):
        self._pending_sends -= 1
        self.endpoint.send(
            agent_name(order.destination),
            VmDescriptorPush(
                vm=vm,
                migration_type=order.migration_type,
                working_set_mib=order.working_set_mib,
            ),
        )
        self._maybe_suspend()

    def _handle_convert(self, source, order: ConvertInPlaceOrder) -> None:
        try:
            vm = self.host.get_vm(order.vmid)
        except MigrationError as error:
            self.endpoint.send(source, Nack("convert", str(error)))
            return
        if vm.residency is not Residency.PARTIAL:
            return  # already full; nothing to pull
        old_home = vm.home_id
        try:
            self.host.convert_vm_full_in_place(vm.vm_id)
        except CapacityError as error:
            self.endpoint.send(source, Nack("convert", str(error)))
            return
        self.owned_vmids.add(vm.vm_id)
        self.endpoint.send(agent_name(old_home), ImageReleaseNotice(vm.vm_id))
        self.endpoint.send(
            source, Ack("converted", payload=(vm.vm_id, self.host.host_id))
        )

    def _handle_exchange(self, source, order: ExchangeOrder) -> None:
        try:
            vm = self.host.get_vm(order.vmid)
        except MigrationError as error:
            self.endpoint.send(source, Nack("exchange", str(error)))
            return
        self.host.detach(vm.vm_id)
        vm.full_migrate(order.origin_home)
        self.owned_vmids.discard(vm.vm_id)
        self._pending_sends += 1
        self.sim.schedule(
            self.costs.full_migration_s,
            self._push_exchange_leg1,
            vm,
            order,
            label=f"exchange-{vm.vm_id}",
        )

    def _push_exchange_leg1(self, vm: VirtualMachine, order: ExchangeOrder):
        self._pending_sends -= 1
        self.endpoint.send(
            agent_name(order.origin_home),
            VmDescriptorPush(
                vm=vm,
                migration_type=MigrationType.FULL,
                repartialize_to=self.host.host_id,
                repartialize_ws_mib=order.working_set_mib,
            ),
        )
        self._maybe_suspend()

    # -- inbound migrations ---------------------------------------------------

    def _handle_arrival(self, source, push: VmDescriptorPush) -> None:
        vm = push.vm
        self.host.attach(vm)
        # A VM landing back on its home host merges with (and thereby
        # releases) the image its memory server was holding.
        self.host.remove_served_image(vm.vm_id)
        if push.migration_type is MigrationType.FULL:
            self.owned_vmids.add(vm.vm_id)
        if push.repartialize_to is not None and not vm.is_active:
            # Second leg of a FulltoPartial exchange: consolidate the VM
            # right back as a partial replica (§3.2).
            self._handle_migration(
                self.manager_name,
                MigrationOrder(
                    vmid=vm.vm_id,
                    migration_type=MigrationType.PARTIAL,
                    destination=push.repartialize_to,
                    working_set_mib=push.repartialize_ws_mib,
                ),
            )
            return
        self.endpoint.send(
            self.manager_name,
            Ack("migrated", payload=(vm.vm_id, self.host.host_id)),
        )

    # -- reintegration ------------------------------------------------------------

    def _handle_reintegration(self, source, order: ReintegrationOrder):
        for vmid in order.vmids:
            try:
                vm = self.host.get_vm(vmid)
            except MigrationError:
                continue
            if vm.residency is not Residency.PARTIAL:
                continue
            home = vm.home_id
            self.host.detach(vmid)
            self._pending_sends += 1
            self.sim.schedule(
                self.costs.reintegration_s,
                self._complete_reintegration,
                vm,
                home,
                label=f"reintegrate-{vmid}",
            )
        self._maybe_suspend()

    def _complete_reintegration(self, vm: VirtualMachine, home: int) -> None:
        self._pending_sends -= 1
        vm.reintegrate()
        self.endpoint.send(
            agent_name(home),
            VmDescriptorPush(vm=vm, migration_type=MigrationType.FULL),
        )
        self._maybe_suspend()

    # -- host power ------------------------------------------------------------------

    def _handle_suspend(self, source) -> None:
        self._suspend_requested = True
        self._maybe_suspend()

    def _maybe_suspend(self) -> None:
        if (
            self._suspend_requested
            and self._pending_sends == 0
            and self.host.is_powered
            and self.host.vm_count == 0
        ):
            self._suspend_requested = False
            self.host.begin_suspend()
            self.sim.schedule(
                3.1, self.host.complete_suspend,
                label=f"suspend-{self.host.host_id}",
            )

    # -- statistics -----------------------------------------------------------------------

    def _report_stats(self) -> None:
        if self.host.is_powered:
            self.endpoint.send(self.manager_name, self.build_stats())
        self.sim.schedule(
            self.stats_interval_s, self._report_stats,
            label=f"stats-{self.host.host_id}",
        )

    def build_stats(self) -> StatsReport:
        """Snapshot the host, as xenstat would (§4.2)."""
        vms = {}
        active = 0
        for vm in self.host.vms():
            if vm.is_active:
                active += 1
            vms[vm.vm_id] = VmStats(
                vmid=vm.vm_id,
                memory_allocation_mib=vm.memory_mib,
                resident_mib=vm.resident_mib,
                active=vm.is_active,
                dirty_rate_mib_s=10.0 if vm.is_active else 0.2,
            )
        return StatsReport(
            host_id=self.host.host_id,
            time_s=self.sim.now,
            memory_used_mib=self.host.used_mib,
            memory_capacity_mib=self.host.capacity_mib,
            cpu_utilization=min(1.0, 0.05 + 0.03 * active),
            io_utilization=min(1.0, 0.02 + 0.01 * active),
            vms=vms,
        )

    # -- local activity detection -----------------------------------------------------------

    def set_vm_activity(self, vmid: int, active: bool) -> None:
        """Drive a local VM's activity and notify the manager on
        boundary crossings (the §3.1 idleness monitor)."""
        vm = self.host.get_vm(vmid)
        was_active = vm.is_active
        vm.set_activity(VmActivity.ACTIVE if active else VmActivity.IDLE)
        if active != was_active:
            self.endpoint.send(
                self.manager_name,
                VmStateChangeNotice(
                    host_id=self.host.host_id, vmid=vmid, active=active
                ),
            )
