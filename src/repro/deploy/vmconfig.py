"""VM configuration files (§4.1).

Clients create VMs by giving the manager the path of a configuration
file on the network storage.  Each file carries a unique four-digit
``vmid``, the path of the VM's disk image, the memory allocation, the
number of virtual CPUs, and device configuration (network, virtual
frame buffer).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

from repro.errors import ConfigError
from repro.units import DEFAULT_VM_MEMORY_MIB


@dataclass(frozen=True)
class VmConfigFile:
    """One VM's configuration, as the manager parses it."""

    vmid: int
    disk_image: str
    memory_mib: float = DEFAULT_VM_MEMORY_MIB
    vcpus: int = 1
    devices: Dict[str, str] = field(
        default_factory=lambda: {"network": "bridge0", "vfb": "vnc"}
    )

    def __post_init__(self) -> None:
        if not 0 <= self.vmid <= 9999:
            raise ConfigError(
                f"vmid must be a four-digit identifier, got {self.vmid}"
            )
        if not self.disk_image:
            raise ConfigError("a VM needs a disk image path")
        if self.memory_mib <= 0.0:
            raise ConfigError("memory allocation must be positive")
        if self.vcpus < 1:
            raise ConfigError("a VM needs at least one vCPU")

    @property
    def vmid_str(self) -> str:
        """The canonical zero-padded four-digit form."""
        return f"{self.vmid:04d}"

    # -- (de)serialization ------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "vmid": self.vmid,
            "disk_image": self.disk_image,
            "memory_mib": self.memory_mib,
            "vcpus": self.vcpus,
            "devices": dict(self.devices),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "VmConfigFile":
        if not isinstance(data, dict):
            raise ConfigError("VM configuration must be an object")
        unknown = set(data) - {"vmid", "disk_image", "memory_mib",
                               "vcpus", "devices"}
        if unknown:
            raise ConfigError(f"unknown VM configuration keys: {sorted(unknown)}")
        try:
            return cls(
                vmid=int(data["vmid"]),
                disk_image=str(data["disk_image"]),
                memory_mib=float(data.get("memory_mib", DEFAULT_VM_MEMORY_MIB)),
                vcpus=int(data.get("vcpus", 1)),
                devices=dict(data.get("devices", {"network": "bridge0",
                                                  "vfb": "vnc"})),
            )
        except KeyError as error:
            raise ConfigError(f"VM configuration missing {error}")
        except (TypeError, ValueError) as error:
            raise ConfigError(f"malformed VM configuration: {error}")

    def save(self, path: Union[str, Path]) -> None:
        """Write the configuration file (JSON on the network storage)."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "VmConfigFile":
        """Parse a configuration file, as the manager does on a create
        call (§4.1)."""
        try:
            with open(path) as handle:
                data = json.load(handle)
        except OSError as error:
            raise ConfigError(f"cannot read VM configuration: {error}")
        except json.JSONDecodeError as error:
            raise ConfigError(f"{path}: invalid JSON ({error})")
        return cls.from_dict(data)
