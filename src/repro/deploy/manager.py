"""The cluster manager daemon (§4.1).

The manager is responsible for VM creation, migration and shutdown, and
for switching hosts between power modes.  It exposes an RPC interface
(the bus endpoint named ``manager``), receives periodic statistics from
host agents, and at each planning interval searches for a placement
that powers more hosts down, issuing ``<vmid, migration type,
destination>`` orders followed by suspend orders and Wake-on-LAN.

The daemon's view of the cluster is an *inventory* it maintains from
agent acknowledgements and statistics reports — it never reads host
objects directly, so its decisions lag reality exactly the way a real
control plane's do.  Policy decisions are delegated to the same
:class:`repro.core.ClusterManager` logic the simulation uses, run
against the inventory's shadow cluster.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.cluster.host import Host
from repro.cluster.power import PowerState
from repro.cluster.topology import Cluster
from repro.core.manager import ClusterManager
from repro.core.plan import ActivationAction, MigrationMode
from repro.core.policies import FULL_TO_PARTIAL, PolicySpec
from repro.deploy.agent import (
    ConvertInPlaceOrder,
    CreateVmOrder,
    ExchangeOrder,
    ReintegrationOrder,
    VmStateChangeNotice,
    agent_name,
    nic_name,
)
from repro.deploy.bus import MessageBus
from repro.deploy.messages import (
    Ack,
    CreateVmCall,
    MigrationOrder,
    MigrationType,
    Nack,
    StatsReport,
    SuspendOrder,
    WakeOnLan,
)
from repro.deploy.vmconfig import VmConfigFile
from repro.errors import ConfigError
from repro.simulator.engine import Simulator
from repro.vm.machine import VirtualMachine
from repro.vm.state import Residency, VmActivity
from repro.vm.workingset import WorkingSetSampler

MANAGER_NAME = "manager"


class _Inventory:
    """The manager's shadow model of the cluster, fed by messages."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.vms: Dict[int, VirtualMachine] = {}
        self.latest_stats: Dict[int, StatsReport] = {}

    def record_creation(self, vmid: int, host_id: int, memory_mib: float):
        vm = VirtualMachine(vmid, host_id, memory_mib)
        self.vms[vmid] = vm
        self.cluster.host(host_id).attach(vm)

    def vm(self, vmid: int) -> VirtualMachine:
        try:
            return self.vms[vmid]
        except KeyError:
            raise ConfigError(f"manager has no record of VM {vmid}")


class ClusterManagerDaemon:
    """The control-plane brain."""

    def __init__(
        self,
        sim: Simulator,
        bus: MessageBus,
        home_host_ids: List[int],
        consolidation_host_ids: List[int],
        host_capacity_mib: float,
        network_storage: Dict[str, VmConfigFile],
        policy: PolicySpec = FULL_TO_PARTIAL,
        planning_interval_s: float = 300.0,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.bus = bus
        self.endpoint = bus.register(MANAGER_NAME, self._on_message)
        #: The NFS share holding VM configuration files (§4.1).
        self.network_storage = network_storage
        self.policy = policy
        self.planning_interval_s = planning_interval_s

        shadow = Cluster(
            home_hosts=len(home_host_ids),
            consolidation_hosts=len(consolidation_host_ids),
            host_capacity_mib=host_capacity_mib,
        )
        # The shadow's dense ids must match the real host ids.
        expected = home_host_ids + consolidation_host_ids
        if [host.host_id for host in shadow.hosts] != expected:
            raise ConfigError(
                "host ids must be dense, homes first; got "
                f"{expected}"
            )
        self.inventory = _Inventory(shadow)
        # Consolidation hosts sleep by default (§3.1).
        for host_id in consolidation_host_ids:
            shadow.host(host_id).power_state = PowerState.SLEEPING
        self.decisions = ClusterManager(
            cluster=shadow,
            policy=policy,
            working_sets=WorkingSetSampler(),
            rng=random.Random(seed),
        )
        self.creations: List[int] = []
        self.orders_sent = 0
        #: (vmid, expected arrival host) -> host to credit when the
        #: agent acknowledges the migration; suspend orders go out only
        #: once a host's outstanding migrations have all completed
        #: ("Once the agent completes the migration tasks, the manager
        #: notifies the agent to suspend the host", §4.1).
        self._awaiting_ack: Dict[tuple, int] = {}
        self._pending_suspend: Dict[int, int] = {}
        self.sim.schedule(
            planning_interval_s, self._planning_tick, label="manager-plan"
        )

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def _on_message(self, source, message) -> None:
        if isinstance(message, CreateVmCall):
            self._handle_create(source, message)
        elif isinstance(message, StatsReport):
            self.inventory.latest_stats[message.host_id] = message
        elif isinstance(message, VmStateChangeNotice):
            self._handle_state_change(message)
        elif isinstance(message, Ack):
            if message.request == "migrated":
                self._handle_migration_ack(message)
        elif isinstance(message, Nack):
            pass  # failures are visible on the bus log
        else:
            self.endpoint.send(
                source, Nack("unknown", f"unhandled message {message!r}")
            )

    # -- VM creation (§4.1) -------------------------------------------

    def _handle_create(self, source, call: CreateVmCall) -> None:
        config = self.network_storage.get(call.config_path)
        if config is None:
            self.endpoint.send(
                source, Nack("create", f"no such file {call.config_path!r}")
            )
            return
        host = self._pick_creation_host(config.memory_mib)
        if host is None:
            self.endpoint.send(
                source, Nack("create", "no host has sufficient resources")
            )
            return
        self.inventory.record_creation(
            config.vmid, host.host_id, config.memory_mib
        )
        self.creations.append(config.vmid)
        self.endpoint.send(agent_name(host.host_id), CreateVmOrder(config))
        self.endpoint.send(source, Ack("create", payload=config.vmid))

    def _pick_creation_host(self, memory_mib: float) -> Optional[Host]:
        """A powered compute host with room (most free memory first)."""
        candidates = [
            host
            for host in self.inventory.cluster.home_hosts
            if host.is_powered and host.can_fit(memory_mib)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda host: host.free_mib)

    # -- activity changes (§3.2) -------------------------------------------

    def _handle_state_change(self, notice: VmStateChangeNotice) -> None:
        vm = self.inventory.vm(notice.vmid)
        vm.set_activity(
            VmActivity.ACTIVE if notice.active else VmActivity.IDLE
        )
        if not notice.active:
            return  # idle transitions are handled by periodic planning
        decision = self.decisions.decide_activation(vm)
        if decision.action is ActivationAction.ALREADY_FULL:
            return
        if decision.action is ActivationAction.CONVERT_IN_PLACE:
            host = self.inventory.cluster.host(vm.host_id)
            old_home = self.inventory.cluster.host(vm.home_id)
            host.convert_vm_full_in_place(vm.vm_id)
            old_home.remove_served_image(vm.vm_id)
            self.endpoint.send(
                agent_name(host.host_id), ConvertInPlaceOrder(vm.vm_id)
            )
            self.orders_sent += 1
            return
        if decision.action is ActivationAction.MIGRATE_NEW_HOME:
            self._order_full_migration(vm, decision.target_host_id)
            return
        self._wake_home_and_return_all(vm.home_id)

    # -- periodic planning (§3.1) ----------------------------------------------

    def _planning_tick(self) -> None:
        # Advance idle streaks: a VM that stayed idle since the last
        # tick has been idle for one more planning interval (the
        # hysteresis input of §3.1's idleness monitor).
        for vm in self.inventory.vms.values():
            vm.set_activity(vm.activity)
        for exchange in self.decisions.plan_exchanges():
            self._execute_exchange(exchange)
        plan = self.decisions.plan_consolidation(compact_consolidation=False)
        for vacation in plan.vacations:
            self._execute_vacation(vacation)
        self.sim.schedule(
            self.planning_interval_s, self._planning_tick,
            label="manager-plan",
        )

    def _execute_vacation(self, vacation) -> None:
        for migration in vacation.migrations:
            vm = self.inventory.vm(migration.vm_id)
            self._wake_if_sleeping(migration.destination_id)
            source_host = self.inventory.cluster.host(migration.source_id)
            destination = self.inventory.cluster.host(
                migration.destination_id
            )
            order = MigrationOrder(
                vmid=vm.vm_id,
                migration_type=(
                    MigrationType.PARTIAL
                    if migration.mode is MigrationMode.PARTIAL
                    else MigrationType.FULL
                ),
                destination=migration.destination_id,
                working_set_mib=migration.working_set_mib,
            )
            # Update the shadow optimistically; agent Nacks would be the
            # place to reconcile (not modeled: agents here are reliable).
            source_host.detach(vm.vm_id)
            if migration.mode is MigrationMode.PARTIAL:
                vm.become_partial(
                    migration.destination_id, migration.working_set_mib
                )
                source_host.add_served_image(vm.vm_id)
            else:
                vm.full_migrate(migration.destination_id)
            destination.attach(vm)
            self.endpoint.send(agent_name(migration.source_id), order)
            self.orders_sent += 1
            self._expect_ack(
                vm.vm_id, migration.destination_id, vacation.host_id
            )
        self._mark_for_suspend(
            vacation.host_id, len(vacation.migrations)
        )

    def _execute_exchange(self, exchange) -> None:
        """One ExchangeOrder covers both legs: the consolidation agent
        pushes the VM home in full; the home agent immediately sends it
        back as a partial replica and the home re-sleeps once the
        manager sees the final arrival ack."""
        vm = self.inventory.vm(exchange.vm_id)
        home = self.inventory.cluster.host(exchange.origin_home_id)
        consolidation = self.inventory.cluster.host(
            exchange.consolidation_host_id
        )
        if not home.can_fit(vm.memory_mib):
            return
        self._wake_if_sleeping(exchange.origin_home_id)
        # Shadow: commit the exchange's end state.
        consolidation.detach(vm.vm_id)
        vm.full_migrate(exchange.origin_home_id)
        home.attach(vm)
        home.detach(vm.vm_id)
        vm.become_partial(
            exchange.consolidation_host_id, exchange.working_set_mib
        )
        home.add_served_image(vm.vm_id)
        consolidation.attach(vm)
        self.endpoint.send(
            agent_name(exchange.consolidation_host_id),
            ExchangeOrder(
                vmid=exchange.vm_id,
                origin_home=exchange.origin_home_id,
                working_set_mib=exchange.working_set_mib,
            ),
        )
        self.orders_sent += 1
        self._expect_ack(
            exchange.vm_id, exchange.consolidation_host_id,
            exchange.origin_home_id,
        )
        self._mark_for_suspend(exchange.origin_home_id, 1)

    def _order_full_migration(self, vm: VirtualMachine, destination_id: int):
        source_id = vm.host_id
        source = self.inventory.cluster.host(source_id)
        destination = self.inventory.cluster.host(destination_id)
        self._wake_if_sleeping(destination_id)
        source.detach(vm.vm_id)
        if vm.residency is Residency.PARTIAL:
            old_home = self.inventory.cluster.host(vm.home_id)
            old_home.remove_served_image(vm.vm_id)
            vm.become_full_at(destination_id)
        else:
            vm.full_migrate(destination_id)
        destination.attach(vm)
        self.endpoint.send(
            agent_name(source_id),
            MigrationOrder(
                vmid=vm.vm_id,
                migration_type=MigrationType.FULL,
                destination=destination_id,
            ),
        )
        self.orders_sent += 1

    def _wake_home_and_return_all(self, home_id: int) -> None:
        home = self.inventory.cluster.host(home_id)
        self._wake_if_sleeping(home_id)
        returning = sorted(home.served_image_ids)
        by_host: Dict[int, List[int]] = {}
        for vmid in returning:
            vm = self.inventory.vm(vmid)
            if not home.can_fit(vm.memory_mib):
                continue
            by_host.setdefault(vm.host_id, []).append(vmid)
            current = self.inventory.cluster.host(vm.host_id)
            current.detach(vmid)
            vm.reintegrate()
            home.attach(vm)
            home.remove_served_image(vmid)
        for host_id, vmids in by_host.items():
            self.endpoint.send(
                agent_name(host_id), ReintegrationOrder(tuple(vmids))
            )
            self.orders_sent += 1

    # -- power management -------------------------------------------------------

    def _wake_if_sleeping(self, host_id: int) -> None:
        host = self.inventory.cluster.host(host_id)
        if host.is_powered:
            return
        if host.is_sleeping:
            host.begin_resume()
            host.complete_resume()  # shadow book-keeping; timing is the
            # agents' concern — the real host resumes on the WoL below.
        self.endpoint.send(nic_name(host_id), WakeOnLan(host_id))

    # -- ack-driven suspension (§4.1) --------------------------------------

    def _expect_ack(self, vmid: int, arrival_host: int, credit_host: int):
        self._awaiting_ack[(vmid, arrival_host)] = credit_host

    def _mark_for_suspend(self, host_id: int, outstanding: int) -> None:
        self._pending_suspend[host_id] = (
            self._pending_suspend.get(host_id, 0) + outstanding
        )
        self._maybe_order_suspend(host_id)

    def _handle_migration_ack(self, ack: Ack) -> None:
        vmid, arrival_host = ack.payload
        credit = self._awaiting_ack.pop((vmid, arrival_host), None)
        if credit is None:
            return
        if credit in self._pending_suspend:
            self._pending_suspend[credit] -= 1
            self._maybe_order_suspend(credit)

    def _maybe_order_suspend(self, host_id: int) -> None:
        if self._pending_suspend.get(host_id, 1) > 0:
            return
        del self._pending_suspend[host_id]
        host = self.inventory.cluster.host(host_id)
        if host.vm_count == 0 and host.is_powered:
            host.begin_suspend()
            host.complete_suspend()
            self.endpoint.send(agent_name(host_id), SuspendOrder(host_id))
