"""Ablation — destination-selection strategy (§3.1, "Where to migrate").

The paper picks consolidation destinations at random and explicitly
leaves smarter placement to future work ("more sophisticated placement
algorithms ... is not the focus of this paper").  This ablation checks
how much is left on the table: random vs first-fit vs best-fit vs
worst-fit destination choice under FulltoPartial.
"""

from repro.analysis import format_percent, format_table
from repro.core import DestinationStrategy, FULL_TO_PARTIAL
from repro.farm import FarmConfig, simulate_day
from repro.traces import DayType


def compute_strategies(seed):
    outcomes = {}
    for strategy in DestinationStrategy:
        config = FarmConfig(placement_strategy=strategy)
        outcomes[strategy.value] = simulate_day(
            config, FULL_TO_PARTIAL, DayType.WEEKDAY, seed=seed
        )
    return outcomes


def test_ablation_placement(benchmark, report, bench_seed):
    outcomes = benchmark.pedantic(
        compute_strategies, args=(bench_seed,), rounds=1, iterations=1
    )

    rows = []
    for name, result in outcomes.items():
        rows.append([
            name,
            format_percent(result.savings_fraction),
            format_percent(result.zero_delay_fraction()),
            f"{result.counters.home_wakeups}",
        ])
    table = format_table(
        ["strategy", "weekday savings", "zero-delay", "home wake-ups"],
        rows,
    )
    note = (
        "paper: random destinations; placement refinement is explicitly "
        "out of scope — the gap between strategies bounds what it could "
        "be worth"
    )
    report("ablation_placement", table + "\n" + note)

    savings = {name: r.savings_fraction for name, r in outcomes.items()}
    # Every strategy keeps the system in the paper's savings band:
    # placement is a second-order knob, as the paper assumes.
    for name, value in savings.items():
        assert abs(value - savings["random"]) < 0.08, name
        assert value > 0.15, name
