"""§4.4.3 — network traffic of full vs partial migration (one VM).

Paper anchors: a full migration ships the whole 4 GiB image; a partial
migration ships 16.0±0.5 MiB of descriptor plus 56.9±7.9 MiB of
on-demand pages; reintegration pushes back 175.3±49.3 MiB of dirty
state.
"""

from repro.analysis import format_table
from repro.prototype import ConsolidationMicrobench


def test_traffic_microbench(benchmark, report):
    result = benchmark(lambda: ConsolidationMicrobench().run())

    rows = [
        ["full migration image", f"{result.full_migration_traffic_mib:.0f}",
         ">= 4096"],
        ["partial descriptor", f"{result.descriptor_mib:.1f}", "16.0 ± 0.5"],
        ["on-demand pages", f"{result.on_demand_mib:.1f}", "56.9 ± 7.9"],
        ["reintegration dirty", f"{result.reintegration_mib:.1f}",
         "175.3 ± 49.3"],
    ]
    table = format_table(["transfer", "measured MiB", "paper MiB"], rows)
    partial_total = (
        result.descriptor_mib + result.on_demand_mib + result.reintegration_mib
    )
    note = (
        f"partial path total {partial_total:.0f} MiB vs "
        f"{result.full_migration_traffic_mib:.0f} MiB for full migration "
        f"({result.full_migration_traffic_mib / partial_total:.0f}x more)"
    )
    report("traffic_microbench", table + "\n" + note)

    assert result.full_migration_traffic_mib >= 4096.0
    assert abs(result.descriptor_mib - 16.0) <= 0.5
    assert abs(result.on_demand_mib - 56.9) <= 7.9
    assert abs(result.reintegration_mib - 175.3) <= 49.3
    assert partial_total < 0.1 * result.full_migration_traffic_mib
