"""Ablation — what is the low-power memory server worth? (§2, §3.3)

The paper's third contribution is the per-host memory server that lets
a home host sleep *through* its partial VMs' page requests.  The
ablation removes it: a sleeping home must wake (suspend/resume round
trip) for every request burst, as in the desktop-era Jettison design.
The paper argues this "would prevent the original Jettison
implementation from saving any energy" in a multi-VM-per-host world —
here we quantify exactly that at cluster scale, across request rates.
"""

from repro.analysis import format_percent, format_table
from repro.core import FULL_TO_PARTIAL
from repro.farm import FarmConfig, simulate_day
from repro.traces import DayType

REQUEST_GAPS_S = (60.0, 120.0, 300.0)


def compute_ablation(seed):
    rows = {}
    rows["with memory server"] = simulate_day(
        FarmConfig(), FULL_TO_PARTIAL, DayType.WEEKDAY, seed=seed
    )
    for gap in REQUEST_GAPS_S:
        config = FarmConfig(
            memory_server_present=False, idle_page_request_gap_s=gap
        )
        rows[f"wake-to-serve, {gap:.0f} s gaps"] = simulate_day(
            config, FULL_TO_PARTIAL, DayType.WEEKDAY, seed=seed
        )
    return rows


def test_ablation_memory_server(benchmark, report, bench_seed):
    outcomes = benchmark.pedantic(
        compute_ablation, args=(bench_seed,), rounds=1, iterations=1
    )

    rows = []
    for label, result in outcomes.items():
        rows.append([
            label,
            format_percent(result.savings_fraction),
            f"{result.counters.page_request_wake_cycles:,.0f}",
        ])
    table = format_table(
        ["design", "weekday savings", "page-request wake cycles"], rows
    )
    note = (
        "paper §2: with ten co-located VMs, request gaps (~5.8 s) drop "
        "below the 5.4 s suspend/resume round trip; without the memory "
        "server the hybrid design loses most of its savings"
    )
    report("ablation_memory_server", table + "\n" + note)

    with_ms = outcomes["with memory server"].savings_fraction
    without_120 = outcomes["wake-to-serve, 120 s gaps"].savings_fraction
    without_60 = outcomes["wake-to-serve, 60 s gaps"].savings_fraction
    without_300 = outcomes["wake-to-serve, 300 s gaps"].savings_fraction
    # The memory server is load-bearing: removing it costs more than
    # half the savings at the default request rate.
    assert without_120 < 0.55 * with_ms
    # And the damage grows with request rate.
    assert without_60 < without_120 < without_300 < with_ms
