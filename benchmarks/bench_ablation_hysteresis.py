"""Ablation — consolidation hysteresis (how eagerly to consolidate).

The paper's manager consolidates a VM at the first planning interval in
which it is idle.  Waiting for more consecutive idle intervals trades
migration churn (traffic, wake-ups, user-visible reintegrations) against
sleep time.  This sweep quantifies the trade-off.
"""

from repro.analysis import format_percent, format_table
from repro.core import FULL_TO_PARTIAL
from repro.farm import FarmConfig, simulate_day
from repro.traces import DayType

HYSTERESIS_INTERVALS = (1, 2, 3, 6)


def compute_sweep(seed):
    outcomes = {}
    for intervals in HYSTERESIS_INTERVALS:
        config = FarmConfig(min_idle_intervals=intervals)
        outcomes[intervals] = simulate_day(
            config, FULL_TO_PARTIAL, DayType.WEEKDAY, seed=seed
        )
    return outcomes


def test_ablation_hysteresis(benchmark, report, bench_seed):
    outcomes = benchmark.pedantic(
        compute_sweep, args=(bench_seed,), rounds=1, iterations=1
    )

    rows = []
    for intervals, result in outcomes.items():
        rows.append([
            f"{intervals} ({intervals * 5} min idle)",
            format_percent(result.savings_fraction),
            f"{result.traffic.network_total_mib() / 1024:.0f}",
            f"{result.counters.partial_migrations}",
            f"{result.counters.reintegrations}",
        ])
    table = format_table(
        ["hysteresis", "savings", "network GiB", "partial migs",
         "reintegrations"],
        rows,
    )
    note = (
        "paper: consolidate at the first idle interval (hysteresis 1). "
        "Finding: hysteresis interacts badly with all-or-nothing host "
        "vacation — one VM idle for less than the threshold pins all 30 "
        "of its host's VMs, so with sporadic background activity the "
        "probability that a whole host qualifies collapses and savings "
        "fall off a cliff.  The paper's eager setting is the right one."
    )
    report("ablation_hysteresis", table + "\n" + note)

    eager = outcomes[1]
    # Patience cuts migration churn monotonically...
    migrations = [
        outcomes[h].counters.partial_migrations
        for h in HYSTERESIS_INTERVALS
    ]
    assert all(a > b for a, b in zip(migrations, migrations[1:]))
    # ...but savings fall monotonically too, and steeply: the eager
    # paper setting dominates.
    savings = [
        outcomes[h].savings_fraction for h in HYSTERESIS_INTERVALS
    ]
    assert all(a > b for a, b in zip(savings, savings[1:]))
    assert eager.savings_fraction == max(savings)
    assert outcomes[6].savings_fraction < 0.5 * eager.savings_fraction
