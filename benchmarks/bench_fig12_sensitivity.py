"""Figure 12 — sensitivity to cluster shape at a fixed 900 VMs.

Paper anchors: with the 900 VMs repacked onto 30/20/18/15/10 home hosts
(30/45/50/60/90 VMs per host, host capacity scaling along) and two to
four consolidation hosts, weekday and weekend savings barely move.
"""

from conftest import timing_lines
from repro.analysis import format_percent, format_table
from repro.core import FULL_TO_PARTIAL
from repro.farm import FarmConfig
from repro.farm.sweep import cluster_shape_sweep
from repro.traces import DayType

SHAPES = (
    (30, 2), (30, 4), (30, 6),
    (20, 2), (20, 3), (20, 4),
    (18, 2), (18, 3), (18, 4),
    (15, 2), (15, 3), (15, 4),
    (10, 2), (10, 3), (10, 4),
)


def compute_sensitivity(runs, seed, runner):
    config = FarmConfig()
    return {
        day_type: cluster_shape_sweep(
            config, FULL_TO_PARTIAL, day_type, shapes=SHAPES,
            runs=runs, base_seed=seed, runner=runner,
        )
        for day_type in (DayType.WEEKDAY, DayType.WEEKEND)
    }


def test_fig12_sensitivity(
    benchmark, report, bench_runs, bench_seed, bench_runner
):
    sweeps = benchmark.pedantic(
        compute_sensitivity, args=(bench_runs, bench_seed, bench_runner),
        rounds=1, iterations=1,
    )

    weekday = dict(sweeps[DayType.WEEKDAY])
    weekend = dict(sweeps[DayType.WEEKEND])
    rows = [
        [label,
         format_percent(weekday[label].mean_savings),
         format_percent(weekend[label].mean_savings)]
        for label, _ in sweeps[DayType.WEEKDAY]
    ]
    table = format_table(
        ["home+consolidation", "weekday savings", "weekend savings"], rows
    )
    note = (
        "paper: savings are similar independent of the number of VMs "
        "assigned to a home host.  Reproduction deviation (see "
        "EXPERIMENTS.md): the per-VM power term that anchors every other "
        "result makes denser home hosts save a larger *fraction* here, so "
        "our curves tilt upward toward the 10-home shapes where the "
        "paper's stay flat; within each home-host count the consolidation-"
        "host count indeed barely matters."
    )
    report(
        "fig12_sensitivity",
        table + "\n" + note + "\n" + timing_lines(bench_runner),
    )

    home_counts = sorted({homes for homes, _cons in SHAPES})
    for table_data in (weekday, weekend):
        for homes in home_counts:
            group = [
                table_data[f"{homes}+{cons}"].mean_savings
                for h, cons in SHAPES
                if h == homes
            ]
            # Within one cluster shape, consolidation-host count barely
            # moves the needle (the paper's level-off).
            assert max(group) - min(group) < 0.05
    # Every shape delivers substantial savings on both day types.
    for homes, cons in SHAPES:
        assert weekday[f"{homes}+{cons}"].mean_savings > 0.15
        assert weekend[f"{homes}+{cons}"].mean_savings > 0.30
    # Weekends always beat weekdays, regardless of shape.
    for homes, cons in SHAPES:
        label = f"{homes}+{cons}"
        assert weekend[label].mean_savings > weekday[label].mean_savings
