"""Shared benchmark fixtures.

Every bench regenerates one of the paper's tables or figures and emits a
paper-vs-measured report.  Reports are written to
``benchmarks/results/<name>.txt`` and mirrored to the real stdout so they
appear in ``pytest benchmarks/ --benchmark-only`` output even under
capture.

Environment knobs:

* ``REPRO_BENCH_RUNS`` — repetitions per configuration for the cluster
  sweeps (default 2; the paper uses 5);
* ``REPRO_BENCH_SEED`` — base seed (default 0);
* ``REPRO_BENCH_WORKERS`` — worker processes for the sweep benches
  (default: one per CPU; ``1`` forces the serial backend).  The runner
  guarantees results are identical at any worker count.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

from repro.farm import SweepRunner

RESULTS_DIR = Path(__file__).parent / "results"

#: Repetitions per sweep configuration (paper: five).
BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "2"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
BENCH_WORKERS = int(
    os.environ.get("REPRO_BENCH_WORKERS", str(os.cpu_count() or 1))
)


@pytest.fixture
def report():
    """Write a named report file and mirror it to the terminal."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        sys.__stdout__.write(f"\n===== {name} =====\n{text}\n")
        sys.__stdout__.flush()

    return _report


@pytest.fixture
def save_series():
    """Write plottable CSV series next to the text reports.

    ``save_series(name, header, rows)`` produces
    ``benchmarks/results/<name>.csv`` so the figures can be re-plotted
    with any tool.
    """

    def _save(name: str, header, rows) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.csv"
        with open(path, "w") as handle:
            handle.write(",".join(str(cell) for cell in header) + "\n")
            for row in rows:
                handle.write(",".join(str(cell) for cell in row) + "\n")

    return _save


@pytest.fixture(scope="session")
def bench_runs():
    return BENCH_RUNS


@pytest.fixture(scope="session")
def bench_seed():
    return BENCH_SEED


@pytest.fixture
def bench_runner():
    """A fresh sweep runner per bench, so its timing summaries cover
    exactly that bench's batches."""
    if BENCH_WORKERS > 1:
        return SweepRunner(backend="process", workers=BENCH_WORKERS)
    return SweepRunner()


def timing_lines(runner: SweepRunner) -> str:
    """Render a runner's batch summaries for the bench report."""
    if not runner.summaries:
        return "timing: no batches executed"
    return "\n".join(f"timing: {summary}" for summary in runner.summaries)
