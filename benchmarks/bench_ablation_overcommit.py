"""Ablation — memory over-commitment (§3, assumption 1).

The paper's simulator commits memory conservatively (a full VM holds
its whole 4 GiB) while noting that ballooning and de-duplication safely
over-commit by ~1.5x.  This sweep asks what that headroom would buy:
every host's effective VM capacity is scaled, letting consolidation
hosts absorb more active full VMs before exhaustion wakes homes.
"""

from repro.analysis import format_percent, format_table
from repro.core import FULL_TO_PARTIAL
from repro.farm import FarmConfig, simulate_day
from repro.traces import DayType

OVERCOMMIT_FACTORS = (1.0, 1.25, 1.5)


def compute_sweep(seed):
    outcomes = {}
    for factor in OVERCOMMIT_FACTORS:
        config = FarmConfig(memory_overcommit=factor)
        outcomes[factor] = simulate_day(
            config, FULL_TO_PARTIAL, DayType.WEEKDAY, seed=seed
        )
    return outcomes


def test_ablation_overcommit(benchmark, report, bench_seed):
    outcomes = benchmark.pedantic(
        compute_sweep, args=(bench_seed,), rounds=1, iterations=1
    )

    rows = []
    for factor, result in outcomes.items():
        rows.append([
            f"{factor:g}x",
            format_percent(result.savings_fraction),
            format_percent(result.mean_home_sleep_fraction()),
            f"{result.counters.home_wakeups}",
            format_percent(result.zero_delay_fraction()),
        ])
    table = format_table(
        ["overcommit", "weekday savings", "home sleep", "home wake-ups",
         "zero-delay"],
        rows,
    )
    note = (
        "paper assumption 1: memory (not CPU) limits consolidation, and "
        "1.5x over-commitment is the safe ceiling for ballooning + "
        "de-duplication.  The headroom buys more vacations and deeper "
        "sleep (wake-up counts rise with the extra sleep episodes, not "
        "despite them)."
    )
    report("ablation_overcommit", table + "\n" + note)

    # Headroom helps energy monotonically, and homes sleep deeper.
    savings = [outcomes[f].savings_fraction for f in OVERCOMMIT_FACTORS]
    sleep = [
        outcomes[f].mean_home_sleep_fraction() for f in OVERCOMMIT_FACTORS
    ]
    assert all(b >= a - 0.01 for a, b in zip(savings, savings[1:]))
    assert all(b >= a - 0.01 for a, b in zip(sleep, sleep[1:]))
    assert savings[-1] > savings[0]