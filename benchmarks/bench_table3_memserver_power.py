"""Table 3 — savings with alternative memory-server implementations.

Paper anchors: replacing the 42.2 W prototype (Atom platform + SAS
drive) with leaner designs raises savings monotonically, up to ~41%
weekday / ~68% weekend at a 1 W design.
"""

from conftest import timing_lines
from repro.analysis import format_percent, format_table
from repro.core import FULL_TO_PARTIAL
from repro.farm import FarmConfig
from repro.farm.sweep import memory_server_power_sweep

PAPER_TABLE3 = {
    42.2: (0.28, 0.43),
    16.0: (0.34, 0.59),
    8.0: (0.37, 0.65),
    4.0: (0.39, 0.66),
    2.0: (0.41, 0.67),
    1.0: (0.41, 0.68),
}


def test_table3_memserver_power(
    benchmark, report, bench_runs, bench_seed, bench_runner
):
    rows_data = benchmark.pedantic(
        lambda: memory_server_power_sweep(
            FarmConfig(), FULL_TO_PARTIAL,
            watts_options=tuple(PAPER_TABLE3),
            runs=bench_runs, base_seed=bench_seed, runner=bench_runner,
        ),
        rounds=1, iterations=1,
    )

    rows = []
    for watts, weekday, weekend in rows_data:
        paper_wd, paper_we = PAPER_TABLE3[watts]
        label = "prototype" if watts == 42.2 else f"{watts:g} W"
        rows.append([
            label,
            format_percent(weekday.mean_savings),
            format_percent(paper_wd),
            format_percent(weekend.mean_savings),
            format_percent(paper_we),
        ])
    table = format_table(
        ["memory server", "weekday", "paper wd", "weekend", "paper we"],
        rows,
    )
    report(
        "table3_memserver_power",
        table + "\n" + timing_lines(bench_runner),
    )

    # Monotone: leaner memory servers never hurt.
    weekday_series = [weekday.mean_savings for _w, weekday, _we in rows_data]
    weekend_series = [weekend.mean_savings for _w, _wd, weekend in rows_data]
    for earlier, later in zip(weekday_series, weekday_series[1:]):
        assert later >= earlier - 0.01
    for earlier, later in zip(weekend_series, weekend_series[1:]):
        assert later >= earlier - 0.01
    # Magnitudes against the paper (the substitution bands).
    by_watts = {watts: (wd, we) for watts, wd, we in rows_data}
    assert abs(by_watts[42.2][0].mean_savings - 0.28) < 0.06
    assert abs(by_watts[42.2][1].mean_savings - 0.43) < 0.07
    assert abs(by_watts[1.0][0].mean_savings - 0.41) < 0.06
    assert abs(by_watts[1.0][1].mean_savings - 0.68) < 0.09
