"""Figure 10 — weekday network-transfer breakdown by policy.

Paper anchors: FulltoPartial increases both full- and partial-migration
traffic over Default — the exchange optimization trades network traffic
for energy.
"""

from repro.analysis import format_table
from repro.core import ALL_POLICIES
from repro.farm import FarmConfig, simulate_day
from repro.migration.traffic import TrafficCategory
from repro.traces import DayType


def compute_breakdown(seed):
    traffic = {}
    for policy in ALL_POLICIES:
        result = simulate_day(FarmConfig(), policy, DayType.WEEKDAY, seed=seed)
        traffic[policy.name] = result.traffic
    return traffic


def test_fig10_traffic_breakdown(benchmark, report, bench_seed):
    traffic = benchmark.pedantic(
        compute_breakdown, args=(bench_seed,), rounds=1, iterations=1
    )

    def gib(mib):
        return f"{mib / 1024.0:.1f}"

    rows = []
    for name, ledger in traffic.items():
        rows.append([
            name,
            gib(ledger.full_path_mib()),
            gib(ledger.mib(TrafficCategory.PARTIAL_DESCRIPTOR)),
            gib(ledger.mib(TrafficCategory.ON_DEMAND_PAGES)),
            gib(ledger.mib(TrafficCategory.REINTEGRATION)),
            gib(ledger.network_total_mib()),
            gib(ledger.mib(TrafficCategory.MEMORY_UPLOAD_SAS)),
        ])
    table = format_table(
        ["policy", "full GiB", "descriptor GiB", "on-demand GiB",
         "reintegration GiB", "network total GiB", "(local SAS GiB)"],
        rows,
    )
    note = (
        "paper: FulltoPartial raises both full and partial traffic over "
        "Default — energy is bought with network bytes (SAS uploads stay "
        "off the datacenter network)"
    )
    report("fig10_traffic_breakdown", table + "\n" + note)

    ftp = traffic["FulltoPartial"]
    default = traffic["Default"]
    only = traffic["OnlyPartial"]
    assert ftp.full_path_mib() > default.full_path_mib()
    assert ftp.partial_path_mib() > default.partial_path_mib()
    assert ftp.network_total_mib() > default.network_total_mib()
    # OnlyPartial moves no full images at all.
    assert only.mib(TrafficCategory.FULL_MIGRATION) == 0.0
    assert only.mib(TrafficCategory.CONVERSION_PULL) == 0.0
