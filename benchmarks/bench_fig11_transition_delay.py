"""Figure 11 — idle-to-active transition delay distribution.

Paper anchors: the zero-delay probability falls from 75% with two
consolidation hosts to 38% with twelve (more VMs live as partials);
non-zero delays are mostly under four seconds; resume storms push the
99.99th percentile to ~19 s at worst.
"""

from repro.analysis import Cdf, format_percent, format_table
from repro.core import FULL_TO_PARTIAL
from repro.farm import FarmConfig, simulate_day
from repro.traces import DayType

CONSOLIDATION_COUNTS = (2, 4, 6, 8, 10, 12)


def compute_delays(seed):
    outcomes = {}
    for count in CONSOLIDATION_COUNTS:
        result = simulate_day(
            FarmConfig(consolidation_hosts=count), FULL_TO_PARTIAL,
            DayType.WEEKDAY, seed=seed,
        )
        outcomes[count] = (
            result.zero_delay_fraction(), Cdf(result.delay_values())
        )
    return outcomes


def test_fig11_transition_delay(benchmark, report, save_series, bench_seed):
    outcomes = benchmark.pedantic(
        compute_delays, args=(bench_seed,), rounds=1, iterations=1
    )

    rows = []
    for count, (zero_fraction, cdf) in outcomes.items():
        rows.append([
            f"30+{count}",
            format_percent(zero_fraction),
            f"{cdf.percentile(90):.1f}",
            f"{cdf.percentile(99):.1f}",
            f"{cdf.percentile(99.99):.1f}",
            f"{cdf.max:.1f}",
        ])
    table = format_table(
        ["cluster", "P(delay=0)", "p90 s", "p99 s", "p99.99 s", "max s"],
        rows,
    )
    note = (
        "paper: P(zero) 75% at 30+2 down to 38% at 30+12; partial-VM "
        "delays < 4 s; storms reach ~19 s at the 99.99th percentile"
    )
    report("fig11_transition_delay", table + "\n" + note)
    rows_csv = []
    for count, (_zero, cdf) in outcomes.items():
        for value, probability in cdf.points(max_points=150):
            rows_csv.append([f"30+{count}", f"{value:.2f}", f"{probability:.5f}"])
    save_series(
        "fig11_transition_delay",
        ["cluster", "delay_s", "cumulative_probability"],
        rows_csv,
    )

    zero2 = outcomes[2][0]
    zero12 = outcomes[12][0]
    assert 0.65 <= zero2 <= 0.85
    assert 0.28 <= zero12 <= 0.50
    # Monotone decline with consolidation capacity.
    fractions = [outcomes[c][0] for c in CONSOLIDATION_COUNTS]
    assert all(a >= b - 0.03 for a, b in zip(fractions, fractions[1:]))
    # Typical non-zero delays stay in single-digit seconds; the worst
    # storms stay below the paper's ~19 s.
    for count in CONSOLIDATION_COUNTS:
        cdf = outcomes[count][1]
        assert cdf.percentile(99) <= 10.0
        assert cdf.max <= 25.0
