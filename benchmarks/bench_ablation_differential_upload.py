"""Ablation — the differential memory-upload optimization (§4.3).

The prototype tracks dirty pages so that re-consolidating a VM uploads
only what changed since the last upload (2.2 s instead of 10.2 s in
Figure 5).  This ablation disables it at both levels: the
micro-benchmark (every upload ships the whole used image) and the
cluster simulation (each partial migration costs the first-upload
latency and occupies the SAS path accordingly).
"""

from repro.analysis import format_percent, format_table
from repro.core import FULL_TO_PARTIAL
from repro.farm import FarmConfig, simulate_day
from repro.migration.costs import MigrationCostModel
from repro.migration.traffic import TrafficCategory
from repro.prototype import ConsolidationMicrobench
from repro.traces import DayType


def compute_ablation(seed):
    # Micro level: a second consolidation without dirty tracking ships
    # the full used image again.
    micro = ConsolidationMicrobench().run()
    naive_partial_2_s = micro.memory_upload_1_s + micro.descriptor_push_s

    # Cluster level: every partial migration pays the full upload.
    naive_costs = MigrationCostModel(
        partial_migration_s=15.7,
        partial_occupancy_s=10.2,
        sas_upload_mib_mean=1300.0,
        sas_upload_mib_std=150.0,
    )
    with_diff = simulate_day(
        FarmConfig(), FULL_TO_PARTIAL, DayType.WEEKDAY, seed=seed
    )
    without_diff = simulate_day(
        FarmConfig(costs=naive_costs), FULL_TO_PARTIAL, DayType.WEEKDAY,
        seed=seed,
    )
    return micro, naive_partial_2_s, with_diff, without_diff


def test_ablation_differential_upload(benchmark, report, bench_seed):
    micro, naive_partial_2_s, with_diff, without_diff = benchmark.pedantic(
        compute_ablation, args=(bench_seed,), rounds=1, iterations=1
    )

    def sas_gib(result):
        return result.traffic.mib(TrafficCategory.MEMORY_UPLOAD_SAS) / 1024.0

    rows = [
        ["re-consolidation latency (1 VM)",
         f"{micro.partial_migration_2_s:.1f} s",
         f"{naive_partial_2_s:.1f} s"],
        ["cluster weekday savings",
         format_percent(with_diff.savings_fraction),
         format_percent(without_diff.savings_fraction)],
        ["SAS upload volume (GiB/day)",
         f"{sas_gib(with_diff):.0f}", f"{sas_gib(without_diff):.0f}"],
    ]
    table = format_table(["quantity", "with differential", "without"], rows)
    report("ablation_differential_upload", table)

    # Differential upload halves-or-better the re-consolidation latency.
    assert micro.partial_migration_2_s < 0.55 * naive_partial_2_s
    # Cluster savings survive without it but measurably degrade: homes
    # stay awake longer per vacate wave, and the SAS path moves far
    # more data.
    assert without_diff.savings_fraction < with_diff.savings_fraction
    assert without_diff.savings_fraction > 0.15
    assert sas_gib(without_diff) > 2.0 * sas_gib(with_diff)
