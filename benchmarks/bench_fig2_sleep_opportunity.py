"""Figure 2 — server sleep opportunities, one VM vs ten co-located VMs.

Paper anchors: mean page-request inter-arrival 3.9 min for one database
VM vs 5.8 s for ten VMs (five database + five web) — the latter close to
the server's 5.4 s suspend/resume round trip, erasing sleep.
"""

import random

from repro.analysis import format_table
from repro.pagesim import (
    DATABASE_PROFILE,
    IdleAccessModel,
    WEB_PROFILE,
    analyze_sleep,
    merge_request_streams,
)

HORIZON_S = 6 * 3600.0


def compute_figure2():
    rng = random.Random(0)
    single = IdleAccessModel(DATABASE_PROFILE, rng).request_times(HORIZON_S)
    ten = merge_request_streams(
        [IdleAccessModel(DATABASE_PROFILE, rng).request_times(HORIZON_S)
         for _ in range(5)]
        + [IdleAccessModel(WEB_PROFILE, rng).request_times(HORIZON_S)
           for _ in range(5)]
    )
    return analyze_sleep(single, HORIZON_S), analyze_sleep(ten, HORIZON_S)


def test_fig2_sleep_opportunity(benchmark, report):
    one_vm, ten_vms = benchmark(compute_figure2)

    rows = [
        ["1 database VM", f"{one_vm.mean_interarrival_s / 60.0:.1f} min",
         f"{one_vm.sleep_fraction:.1%}",
         f"{one_vm.energy_saving_fraction:.1%}", one_vm.transitions],
        ["10 VMs (5 db + 5 web)", f"{ten_vms.mean_interarrival_s:.1f} s",
         f"{ten_vms.sleep_fraction:.1%}",
         f"{ten_vms.energy_saving_fraction:.1%}", ten_vms.transitions],
    ]
    table = format_table(
        ["scenario", "mean gap", "sleep", "energy saved", "transitions"],
        rows,
    )
    notes = (
        "paper: 3.9 min vs 5.8 s mean inter-arrival; the 10-VM case "
        "leaves effectively no useful sleep"
    )
    report("fig2_sleep_opportunity", table + "\n" + notes)

    assert abs(one_vm.mean_interarrival_s / 60.0 - 3.9) <= 0.2 * 3.9
    assert abs(ten_vms.mean_interarrival_s - 5.8) <= 0.2 * 5.8
    assert one_vm.energy_saving_fraction > 0.7
    assert ten_vms.energy_saving_fraction < 0.25
