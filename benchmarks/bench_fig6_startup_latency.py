"""Figure 6 — application start-up latency, full vs partial VMs.

Paper anchors: applications start up to 111x slower in partial VMs
(LibreOffice: 168 s); pre-fetching the VM's entire remaining state takes
only 41 s.
"""

from repro.analysis import format_table
from repro.prototype import startup_latency_table
from repro.prototype.apps import prefetch_alternative_s

FIGURE6_APPS = [
    "libreoffice-doc",
    "thunderbird",
    "evince-pdf",
    "pidgin",
    "firefox-cnn",
    "firefox-maps",
    "firefox-sunspider",
]


def test_fig6_startup_latency(benchmark, report):
    table_data = benchmark(
        lambda: startup_latency_table(application_keys=FIGURE6_APPS)
    )

    rows = [
        [entry.application, f"{entry.full_vm_s:.1f}",
         f"{entry.partial_vm_s:.1f}", f"{entry.slowdown:.0f}x"]
        for entry in table_data.values()
    ]
    prefetch = prefetch_alternative_s()
    table = format_table(
        ["application", "full VM s", "partial VM s", "slowdown"], rows
    )
    note = (
        f"pre-fetching the whole VM instead: {prefetch:.1f} s "
        f"(paper: 41 s); paper worst case: LibreOffice 168 s, 111x"
    )
    report("fig6_startup_latency", table + "\n" + note)

    libre = table_data["libreoffice-doc"]
    assert abs(libre.partial_vm_s - 168.0) / 168.0 < 0.1
    assert abs(libre.slowdown - 111.0) / 111.0 < 0.15
    worst = max(entry.slowdown for entry in table_data.values())
    assert worst <= 120.0
    assert prefetch < libre.partial_vm_s
