"""Ablation — pre-copy vs post-copy for active VMs (§2, §3.1).

Oasis live-migrates active VMs with *pre-copy* "because it offers
minimal performance degradation to active workloads during migration";
post-copy resumes the VM almost immediately but then stalls it on
remote page faults, which is also why partial VMs (post-copy's
demand-fetch half, §2) must be converted to full before real use.  This
bench puts numbers on that design choice for a 4 GiB VM across dirty
rates.
"""

from repro.analysis import format_table
from repro.migration import PostCopyModel, PreCopyModel

DIRTY_RATES_MIB_S = (2.0, 10.0, 40.0, 80.0)
MEMORY_MIB = 4096.0
ACTIVE_WORKING_SET_MIB = 600.0


def compute_comparison():
    precopy = PreCopyModel()
    postcopy = PostCopyModel()
    rows = []
    for dirty_rate in DIRTY_RATES_MIB_S:
        pre = precopy.migrate(MEMORY_MIB, dirty_rate)
        post = postcopy.migrate(MEMORY_MIB, ACTIVE_WORKING_SET_MIB)
        rows.append((dirty_rate, pre, post))
    return rows


def test_ablation_migration_mechanism(benchmark, report):
    comparison = benchmark(compute_comparison)

    rows = []
    for dirty_rate, pre, post in comparison:
        rows.append([
            f"{dirty_rate:g}",
            f"{pre.total_s:.1f}",
            f"{pre.downtime_s:.2f}",
            f"{pre.transferred_mib:.0f}",
            f"{post.downtime_s:.2f}",
            f"{post.demand_faults:,}",
            f"{post.completion_s:.1f}",
        ])
    table = format_table(
        ["dirty MiB/s", "pre total s", "pre downtime s", "pre MiB",
         "post downtime s", "post stall faults", "post complete s"],
        rows,
    )
    note = (
        "pre-copy: longer migrations, near-zero downtime, extra redirty "
        "traffic; post-copy: instant resume but tens of thousands of "
        "remote-fault stalls while the image streams — the degradation "
        "Oasis avoids by using pre-copy for active VMs (§3.1)"
    )
    report("ablation_migration_mechanism", table + "\n" + note)

    for _dirty_rate, pre, post in comparison:
        # Pre-copy's downtime stays sub-second at idle-ish dirty rates;
        # its cost is time and traffic.
        assert post.downtime_s < pre.total_s * 0.05
        assert pre.transferred_mib >= MEMORY_MIB
        # Post-copy pays in demand faults that pre-copy never incurs.
        assert post.demand_faults > 10_000
    # Pre-copy transfers grow with dirty rate (the redirty tax).
    transfers = [pre.transferred_mib for _d, pre, _p in comparison]
    assert transfers == sorted(transfers)
