"""Table 1 — energy profiles and S3 transition times.

The power-meter harness drives the host and memory-server models through
every Table 1 phase on the event kernel and derives each phase's mean
power from integrated energy over elapsed time.
"""

from repro.analysis import format_table
from repro.prototype import measure_energy_profiles

PAPER_TABLE1 = {
    ("Custom host", "Idle"): (None, 102.2),
    ("Custom host", "20 VMs"): (None, 137.9),
    ("Custom host", "Suspend"): (3.1, 138.2),
    ("Custom host", "Resume"): (2.3, 149.2),
    ("Custom host", "Sleep (S3)"): (None, 12.9),
    ("Memory server", "Idle"): (None, 27.8),
    ("SAS drive", "Idle"): (None, 14.4),
}


def test_table1_energy_profiles(benchmark, report):
    readings = benchmark(measure_energy_profiles)

    rows = []
    for reading in readings:
        time_s, power_w = PAPER_TABLE1[(reading.device, reading.state)]
        rows.append([
            reading.device,
            reading.state,
            f"{reading.time_s:.1f}" if reading.time_s else "N/A",
            f"{reading.power_w:.1f}",
            f"{time_s:.1f}" if time_s else "N/A",
            f"{power_w:.1f}",
        ])
    table = format_table(
        ["Device", "State", "Time (s)", "Power (W)",
         "paper s", "paper W"],
        rows,
    )
    report("table1_energy_profiles", table)

    for reading in readings:
        paper_time, paper_power = PAPER_TABLE1[(reading.device, reading.state)]
        assert abs(reading.power_w - paper_power) < 0.05
        if paper_time is not None:
            assert abs(reading.time_s - paper_time) < 0.01
