"""Figure 5 — consolidation latencies for one VM.

Paper anchors: full live migration 41 s; first partial migration 15.7 s
(10.2 s memory upload); second partial migration 7.2 s (2.2 s
differential upload); reintegration 3.7 s; descriptor-only lower bound
~5.2 s.
"""

from repro.analysis import format_table
from repro.prototype import ConsolidationMicrobench

PAPER_FIG5 = {
    "full migration": 41.0,
    "partial migration #1": 15.7,
    "partial migration #2": 7.2,
    "reintegration": 3.7,
    "descriptor push (lower bound)": 5.2,
}


def test_fig5_consolidation_latency(benchmark, report):
    result = benchmark(lambda: ConsolidationMicrobench().run())

    rows = []
    for label, measured in result.rows().items():
        paper = PAPER_FIG5[label]
        rows.append([
            label, f"{measured:.1f}", f"{paper:.1f}",
            f"{measured / paper:.2f}x",
        ])
    rows.append([
        "memory upload #1", f"{result.memory_upload_1_s:.1f}", "10.2",
        f"{result.memory_upload_1_s / 10.2:.2f}x",
    ])
    rows.append([
        "memory upload #2 (differential)",
        f"{result.memory_upload_2_s:.1f}", "2.2",
        f"{result.memory_upload_2_s / 2.2:.2f}x",
    ])
    table = format_table(
        ["operation", "measured s", "paper s", "ratio"], rows
    )
    report("fig5_consolidation_latency", table)

    for label, measured in result.rows().items():
        assert abs(measured - PAPER_FIG5[label]) / PAPER_FIG5[label] < 0.12
    # The differential upload must beat the first upload decisively.
    assert result.memory_upload_2_s < 0.35 * result.memory_upload_1_s
