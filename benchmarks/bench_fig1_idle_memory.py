"""Figure 1 — memory access pattern of idle desktop/web/database VMs.

Paper anchors: over one idle hour, the VMs touch 188.2 / 37.6 / 30.6 MiB
of their 4 GiB allocations (under 5%).
"""

import random

from repro.analysis import format_table
from repro.pagesim import (
    DATABASE_PROFILE,
    DESKTOP_PROFILE,
    IdleAccessModel,
    WEB_PROFILE,
)

PAPER_1H_MIB = {"desktop": 188.2, "web": 37.6, "database": 30.6}


def compute_figure1():
    curves = {}
    for profile in (DESKTOP_PROFILE, WEB_PROFILE, DATABASE_PROFILE):
        model = IdleAccessModel(profile, random.Random(0))
        curves[profile.name] = model.unique_curve(3600.0, step_s=300.0)
    return curves


def test_fig1_idle_memory(benchmark, report):
    curves = benchmark(compute_figure1)

    rows = []
    for minute in (5, 15, 30, 45, 60):
        index = minute // 5
        rows.append(
            [minute]
            + [f"{curves[name][index][1]:.1f}"
               for name in ("desktop", "web", "database")]
        )
    table = format_table(
        ["idle min", "desktop MiB", "web MiB", "database MiB"], rows
    )
    summary = ["paper @60 min: desktop 188.2, web 37.6, database 30.6 MiB"]
    for name, target in PAPER_1H_MIB.items():
        measured = curves[name][-1][1]
        summary.append(f"measured {name}: {measured:.1f} MiB")
        assert abs(measured - target) / target < 0.10
        # "less than 5% of their nominal memory allocation" (§2)
        assert measured < 0.05 * 4096.0
    report("fig1_idle_memory", table + "\n" + "\n".join(summary))
