"""Figure 8 — energy savings vs number of consolidation hosts.

Paper anchors (30 home hosts): OnlyPartial saves ~6%; Default only
marginally more; FulltoPartial reaches 28% on weekdays and 43% on
weekends; NewHome adds nothing over FulltoPartial; savings rise with
consolidation hosts until ~4 and then level off.
"""

from conftest import timing_lines
from repro.analysis import format_percent, format_table
from repro.core import ALL_POLICIES
from repro.farm import FarmConfig
from repro.farm.sweep import consolidation_host_sweep
from repro.traces import DayType

CONSOLIDATION_COUNTS = (2, 4, 6, 8, 10, 12)


def compute_sweeps(runs, seed, runner):
    config = FarmConfig()
    return {
        day_type: consolidation_host_sweep(
            config, ALL_POLICIES, day_type,
            consolidation_counts=CONSOLIDATION_COUNTS,
            runs=runs, base_seed=seed, runner=runner,
        )
        for day_type in (DayType.WEEKDAY, DayType.WEEKEND)
    }


def test_fig8_energy_savings(
    benchmark, report, save_series, bench_runs, bench_seed, bench_runner
):
    sweeps = benchmark.pedantic(
        compute_sweeps, args=(bench_runs, bench_seed, bench_runner),
        rounds=1, iterations=1,
    )

    sections = []
    for day_type, sweep in sweeps.items():
        rows = []
        for policy_name, series in sweep.items():
            row = [policy_name]
            for _count, point in series:
                row.append(
                    f"{format_percent(point.mean_savings)}"
                    f"±{format_percent(point.std_savings)}"
                )
            rows.append(row)
        headers = ["policy"] + [f"{c} cons" for c in CONSOLIDATION_COUNTS]
        sections.append(f"-- {day_type.value} --\n"
                        + format_table(headers, rows))
    note = (
        "paper @4 consolidation hosts: OnlyPartial ~6%, FulltoPartial "
        "28% weekday / 43% weekend, NewHome ~= FulltoPartial"
    )
    report(
        "fig8_energy_savings",
        "\n\n".join(sections) + "\n" + note + "\n"
        + timing_lines(bench_runner),
    )
    rows_csv = []
    for day_type, sweep in sweeps.items():
        for policy_name, series in sweep.items():
            for count, point in series:
                rows_csv.append([
                    day_type.value, policy_name, count,
                    f"{point.mean_savings:.4f}", f"{point.std_savings:.4f}",
                ])
    save_series(
        "fig8_energy_savings",
        ["day_type", "policy", "consolidation_hosts",
         "mean_savings", "std_savings"],
        rows_csv,
    )

    weekday = sweeps[DayType.WEEKDAY]
    weekend = sweeps[DayType.WEEKEND]
    at4 = {name: dict(series)[4] for name, series in weekday.items()}

    # Headline magnitudes.
    assert 0.20 <= at4["FulltoPartial"].mean_savings <= 0.36
    assert 0.33 <= dict(weekend["FulltoPartial"])[4].mean_savings <= 0.53
    assert 0.00 <= at4["OnlyPartial"].mean_savings <= 0.12
    # Ordering: who wins.
    assert (
        at4["OnlyPartial"].mean_savings
        < at4["Default"].mean_savings
        < at4["FulltoPartial"].mean_savings + 0.02
    )
    assert abs(
        at4["NewHome"].mean_savings - at4["FulltoPartial"].mean_savings
    ) < 0.06
    # Shape: rises to the knee at 4 hosts, then levels off.
    ftp = dict(weekday["FulltoPartial"])
    assert ftp[4].mean_savings > ftp[2].mean_savings
    for count in (6, 8, 10, 12):
        assert abs(ftp[count].mean_savings - ftp[4].mean_savings) < 0.05
