"""Figure 7 — active VMs and fully-powered hosts over a simulated day.

Paper anchors (30 home + 4 consolidation hosts, FulltoPartial): never
more than 411 (46%) of the 900 VMs are active at once; activity peaks
around 2 pm and bottoms near 6:30 am; at the trough all 900 VMs fit in
three consolidation hosts.
"""

from repro.analysis import format_table, moving_average
from repro.core import FULL_TO_PARTIAL
from repro.farm import FarmConfig, simulate_day
from repro.traces import DayType


def compute_day(seed):
    return {
        day_type: simulate_day(
            FarmConfig(), FULL_TO_PARTIAL, day_type, seed=seed
        )
        for day_type in (DayType.WEEKDAY, DayType.WEEKEND)
    }


def test_fig7_day_timeseries(benchmark, report, save_series, bench_seed):
    results = benchmark.pedantic(
        compute_day, args=(bench_seed,), rounds=1, iterations=1
    )
    weekday = results[DayType.WEEKDAY]

    rows = []
    for hour in range(0, 24, 2):
        lo, hi = hour * 12, (hour + 2) * 12
        def mean(series):
            return sum(series[lo:hi]) / (hi - lo)
        rows.append([
            f"{hour:02d}:00",
            f"{mean(weekday.active_vms):.0f}",
            f"{mean(weekday.powered_hosts):.1f}",
            f"{mean(results[DayType.WEEKEND].active_vms):.0f}",
            f"{mean(results[DayType.WEEKEND].powered_hosts):.1f}",
        ])
    table = format_table(
        ["hour", "wd active", "wd powered", "we active", "we powered"], rows
    )
    smoothed = moving_average(weekday.active_vms, window=12)
    peak_index = max(range(len(smoothed)), key=smoothed.__getitem__)
    trough_index = min(range(len(smoothed)), key=smoothed.__getitem__)
    note = (
        f"weekday peak {weekday.peak_active_vms} active VMs "
        f"(paper: <= 411) at {peak_index / 12:.1f} h (paper: ~14 h); "
        f"trough at {trough_index / 12:.1f} h (paper: ~6.5 h); "
        f"min powered hosts {weekday.min_powered_hosts} "
        f"(paper: 3 consolidation hosts hold all 900 VMs)"
    )
    report("fig7_day_timeseries", table + "\n" + note)
    save_series(
        "fig7_day_timeseries",
        ["time_s", "wd_active", "wd_powered", "we_active", "we_powered"],
        zip(
            weekday.sample_times_s,
            weekday.active_vms,
            weekday.powered_hosts,
            results[DayType.WEEKEND].active_vms,
            results[DayType.WEEKEND].powered_hosts,
        ),
    )

    assert weekday.peak_active_vms <= 0.52 * 900
    assert 11.0 <= peak_index / 12 <= 17.0
    assert 4.0 <= trough_index / 12 <= 8.5
    assert weekday.min_powered_hosts <= 5
    assert max(weekday.powered_hosts) >= 28
