"""Figure 9 — CDF of VMs per consolidation host.

Paper anchors: FulltoPartial consolidates much denser than Default (the
median rises from 60 to 93 in the paper's runs); NewHome's distribution
overlaps FulltoPartial's; densities reach many hundreds of (mostly
partial) VMs per host.
"""

from repro.analysis import Cdf, format_table
from repro.core import ALL_POLICIES
from repro.farm import FarmConfig, simulate_day
from repro.traces import DayType


def compute_cdfs(seed):
    cdfs = {}
    for policy in ALL_POLICIES:
        result = simulate_day(
            FarmConfig(), policy, DayType.WEEKDAY, seed=seed
        )
        cdfs[policy.name] = Cdf(result.consolidation_ratio_samples)
    return cdfs


def test_fig9_consolidation_cdf(benchmark, report, save_series, bench_seed):
    cdfs = benchmark.pedantic(
        compute_cdfs, args=(bench_seed,), rounds=1, iterations=1
    )

    rows = []
    for name, cdf in cdfs.items():
        rows.append([
            name, f"{cdf.percentile(25):.0f}", f"{cdf.median():.0f}",
            f"{cdf.percentile(75):.0f}", f"{cdf.percentile(90):.0f}",
            f"{cdf.max:.0f}",
        ])
    table = format_table(
        ["policy", "p25", "median", "p75", "p90", "max"], rows
    )
    ratio = cdfs["FulltoPartial"].median() / cdfs["Default"].median()
    note = (
        f"FulltoPartial/Default median ratio: {ratio:.2f} "
        f"(paper: 93/60 = 1.55); NewHome overlaps FulltoPartial"
    )
    report("fig9_consolidation_cdf", table + "\n" + note)
    rows_csv = []
    for name, cdf in cdfs.items():
        for value, probability in cdf.points(max_points=120):
            rows_csv.append([name, value, f"{probability:.4f}"])
    save_series(
        "fig9_consolidation_cdf",
        ["policy", "vms_per_host", "cumulative_probability"],
        rows_csv,
    )

    # FulltoPartial consolidates denser than Default, by a factor in the
    # paper's ballpark.
    assert cdfs["FulltoPartial"].median() > cdfs["Default"].median()
    assert 1.2 <= ratio <= 2.6
    # Densities reach hundreds per host (the Figure 9 x-axis runs to 800).
    assert cdfs["FulltoPartial"].max > 300
    # NewHome tracks FulltoPartial.
    assert (
        abs(cdfs["NewHome"].median() - cdfs["FulltoPartial"].median())
        < 0.5 * cdfs["FulltoPartial"].median()
    )
