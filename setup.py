"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``; this file
only exists so that editable installs work in offline environments whose
setuptools lacks wheel support (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
