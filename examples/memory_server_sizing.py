#!/usr/bin/env python3
"""What is a leaner memory server worth?  (Table 3 as a sizing tool.)

The prototype's memory server draws 42.2 W (Atom platform + SAS drive) —
a large bite out of the 89 W a sleeping host saves.  This example sweeps
candidate designs, from the prototype down to a 1 W embedded service
processor with direct DRAM access, and reports the cluster-level energy
savings each would deliver, plus the break-even draw at which the
memory-server idea stops paying at all.

Run with::

    python examples/memory_server_sizing.py [--runs N]
"""

import argparse

from repro import FarmConfig, FULL_TO_PARTIAL
from repro.analysis import format_percent, format_table
from repro.farm.sweep import memory_server_power_sweep

DESIGNS = {
    42.2: "prototype: Atom platform + dedicated SAS drive",
    16.0: "embedded SoC, no spinning drive",
    8.0: "service-processor class (iLO/DRAC extension)",
    4.0: "microcontroller + host-DRAM self-refresh access",
    2.0: "ASIC integrated on the motherboard",
    1.0: "NIC-integrated page responder",
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    sweep = memory_server_power_sweep(
        FarmConfig(), FULL_TO_PARTIAL,
        watts_options=tuple(DESIGNS),
        runs=args.runs, base_seed=args.seed,
    )

    rows = []
    for watts, weekday, weekend in sweep:
        rows.append([
            f"{watts:g} W",
            format_percent(weekday.mean_savings),
            format_percent(weekend.mean_savings),
            DESIGNS[watts],
        ])
    print(format_table(
        ["draw", "weekday", "weekend", "design"], rows
    ))

    prototype = sweep[0]
    leanest = sweep[-1]
    weekday_gain = leanest[1].mean_savings - prototype[1].mean_savings
    weekend_gain = leanest[2].mean_savings - prototype[2].mean_savings
    print()
    print(
        f"going from the prototype to a {leanest[0]:g} W design is worth "
        f"{format_percent(weekday_gain)} more on weekdays and "
        f"{format_percent(weekend_gain)} more on weekends "
        f"(paper: 28->41% and 43->68%)"
    )
    print(
        "break-even: a memory server drawing more than the ~89 W gap "
        "between an idle host (102.2 W) and S3 (12.9 W) would make "
        "sleeping pointless"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
