#!/usr/bin/env python3
"""Watch the Oasis control plane work, message by message (§4.1-4.2).

Builds an in-process deployment — a cluster manager daemon, one agent
per host, a client, and a latency-modeled RPC bus — then walks the
paper's whole protocol:

1. the client creates VMs from configuration files on network storage;
2. users go idle; the manager's planning tick issues
   ``<vmid, migration type, destination>`` orders; agents upload memory
   to their memory servers and push descriptors;
3. after the migration acks arrive, the manager orders the empty home
   hosts to suspend;
4. a user returns: the agent notices, the manager orders an in-place
   conversion;
5. the user leaves again: a FulltoPartial exchange bounces the VM
   through its origin home (woken by Wake-on-LAN) and back out as a
   partial replica, and the home re-sleeps.

Run with::

    python examples/control_plane.py
"""

from repro.deploy import Deployment, VmConfigFile


def print_bus_traffic(deployment, since_index, title):
    print(f"\n--- {title} ---")
    for time_s, source, destination, message in deployment.bus.log[since_index:]:
        name = type(message).__name__
        detail = ""
        if hasattr(message, "vmid"):
            detail = f" vm={message.vmid}"
        elif hasattr(message, "host_id"):
            detail = f" host={message.host_id}"
        if name in ("StatsReport",):
            continue  # periodic chatter; skip for readability
        print(f"  t={time_s:8.2f}s  {source} -> {destination}: {name}{detail}")
    return len(deployment.bus.log)


def main() -> int:
    deployment = Deployment(
        home_hosts=2, consolidation_hosts=1, vms_per_host_hint=2
    )
    mark = 0

    # 1. create four desktop VMs
    for vmid in (1001, 1002, 1003, 1004):
        deployment.create_vm(
            VmConfigFile(vmid=vmid, disk_image=f"/nfs/disks/{vmid:04d}.img")
        )
    deployment.run_for(5.0)
    mark = print_bus_traffic(deployment, mark, "VM creation")
    print("  placements:", {
        vmid: deployment.find_vm_host(vmid).host_id
        for vmid in (1001, 1002, 1003, 1004)
    })

    # 2-3. everyone idles; the planning tick consolidates and homes sleep
    deployment.run_for(1300.0)
    mark = print_bus_traffic(deployment, mark, "consolidation + suspend")
    print("  powered hosts:", deployment.powered_hosts())

    # 4. a user returns
    deployment.set_vm_activity(1001, True)
    deployment.run_for(30.0)
    mark = print_bus_traffic(deployment, mark, "user returns: conversion")
    vm = deployment.find_vm_host(1001).get_vm(1001)
    print(f"  VM 1001 is now {vm.residency.value}, homed on host {vm.home_id}")

    # 5. and leaves again — the FulltoPartial exchange
    deployment.set_vm_activity(1001, False)
    deployment.run_for(900.0)
    mark = print_bus_traffic(deployment, mark, "user leaves: exchange")
    vm = deployment.find_vm_host(1001).get_vm(1001)
    print(f"  VM 1001 is {vm.residency.value} again "
          f"(image back at home {vm.home_id}); powered hosts: "
          f"{deployment.powered_hosts()}")

    deployment.check_consistency()
    print("\nmanager inventory consistent with ground truth — done")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
