#!/usr/bin/env python3
"""Energy audit for a VDI deployment: what would Oasis save *here*?

A downstream operator's workflow: bring your own activity traces (or
generate a synthetic population), describe your rack, and get a report —
projected savings, how the cluster breathes over the day, what users
would feel, and how much network headroom the churn needs.

Run with::

    python examples/datacenter_audit.py [--traces traces.csv]
    python examples/datacenter_audit.py --users 900 --home-hosts 30

Generate a trace file to edit with::

    python -m repro traces generate --count 900 --out traces.csv
"""

import argparse

from repro import DayType, FarmConfig, FULL_TO_PARTIAL
from repro.analysis import Cdf, bin_series, format_percent, format_table
from repro.farm import FarmSimulation
from repro.traces import compute_ensemble_stats, generate_ensemble
from repro.traces.io import read_ensemble_csv


def load_ensemble(args):
    if args.traces:
        ensemble = read_ensemble_csv(args.traces)
        print(f"loaded {len(ensemble)} user-days from {args.traces}")
        return ensemble
    return generate_ensemble(args.users, DayType.WEEKDAY, seed=args.seed)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", help="CSV of user-day traces")
    parser.add_argument("--users", type=int, default=900)
    parser.add_argument("--home-hosts", type=int, default=30)
    parser.add_argument("--consolidation-hosts", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    ensemble = load_ensemble(args)
    if len(ensemble) % args.home_hosts:
        parser.error(
            f"{len(ensemble)} users do not divide over "
            f"{args.home_hosts} home hosts"
        )
    config = FarmConfig(
        home_hosts=args.home_hosts,
        consolidation_hosts=args.consolidation_hosts,
        vms_per_host=len(ensemble) // args.home_hosts,
    )

    print()
    print("workload profile:", compute_ensemble_stats(
        ensemble, host_group_size=config.vms_per_host
    ))

    simulation = FarmSimulation(config, FULL_TO_PARTIAL, ensemble,
                                seed=args.seed)
    result = simulation.run()

    print()
    print("=== projected energy ===")
    from repro.energy import ElectricityTariff, SavingsStatement

    statement = SavingsStatement(result.energy, ElectricityTariff())
    print(f"savings: {format_percent(result.savings_fraction)} — "
          f"{statement}")
    print(f"home hosts sleep "
          f"{format_percent(result.mean_home_sleep_fraction())} of the day")

    print()
    print("=== how the cluster breathes ===")
    binned = bin_series(
        result.sample_times_s,
        [float(x) for x in result.powered_hosts],
        bin_width=4 * 3600.0,
    )
    rows = [
        [f"{int(start // 3600):02d}:00-{int(start // 3600) + 4:02d}:00",
         f"{mean_powered:.1f} / {config.home_hosts + config.consolidation_hosts}"]
        for start, mean_powered in binned
    ]
    print(format_table(["window", "mean powered hosts"], rows))

    print()
    print("=== what users feel ===")
    cdf = Cdf(result.delay_values())
    print(f"{format_percent(result.zero_delay_fraction())} of wake-ups are "
          f"instant; p99 delay {cdf.percentile(99):.1f} s, worst "
          f"{cdf.max:.1f} s")

    print()
    print("=== network headroom needed ===")
    total_gib = result.traffic.network_total_mib() / 1024
    print(f"{total_gib:.0f} GiB/day of migration traffic "
          f"({total_gib * 1024 / 86400:.0f} MiB/s sustained average) — "
          f"keep home and consolidation hosts on the same rack switch")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
