#!/usr/bin/env python3
"""Walk the partial-VM machinery end to end, with real bytes.

This example exercises the actual mechanism stack rather than the
cluster simulation:

1. build a small VM memory image out of synthetic pages;
2. compress and upload it to a memory-server page store (as the home
   host does before suspending, §4.3);
3. create a partial VM with absent page tables and let it demand-fault
   pages through a memtap process (§4.2);
4. dirty a few pages and push them back — the reintegration path;
5. print the same micro-metrics as the paper's §4.4 benchmarks.

Run with::

    python examples/partial_vm_pipeline.py
"""

import random

from repro.analysis import format_table
from repro.memserver import MemoryServer, PageStore
from repro.memserver.pages import PAGE_BYTES, PageKind, SyntheticPageFactory
from repro.prototype import ConsolidationMicrobench, Memtap, PartialVmMemory


def build_image(pages_count: int):
    factory = SyntheticPageFactory(seed=42)
    kinds = [PageKind.ZERO, PageKind.TEXT, PageKind.CODE, PageKind.RANDOM]
    return {
        pfn: factory.make(kinds[pfn % len(kinds)])
        for pfn in range(pages_count)
    }


def main() -> int:
    pages = build_image(256)  # a 1 MiB guest for the demo
    print(f"guest image: {len(pages)} pages "
          f"({len(pages) * PAGE_BYTES // 1024} KiB)")

    # 1-2: compress + upload to the memory server's store.
    store = PageStore()
    receipt = store.upload(vm_id=1, pages=pages)
    print(
        f"upload: {receipt.raw_mib:.2f} MiB raw -> "
        f"{receipt.compressed_mib:.2f} MiB compressed "
        f"(ratio {receipt.compression_ratio:.2f}), "
        f"{receipt.upload_s:.2f} s over the SAS link"
    )

    # 3: the partial VM faults pages in on demand.
    server = MemoryServer(host_id=0, store=store)
    server.start_serving()
    memory = PartialVmMemory(vm_id=1, total_pages=len(pages))
    memtap = Memtap(memory, server)
    rng = random.Random(7)
    working_set = rng.sample(range(len(pages)), 48)
    for pfn in working_set:
        data = memtap.access(pfn)
        assert data == pages[pfn], "fault service corrupted a page!"
    print(
        f"demand faults: {memtap.faults_served} pages, "
        f"{memtap.bytes_fetched / 1024:.1f} KiB on the wire, "
        f"{memtap.time_spent_s * 1000:.1f} ms of modeled fault latency "
        f"({memory.allocated_chunks} x 2 MiB frame chunks allocated)"
    )

    # 4: dirty some pages, reintegrate them.
    dirtied = working_set[:8]
    for pfn in dirtied:
        page = bytearray(memory.read(pfn))
        page[:8] = b"DIRTYPG!"
        memory.write(pfn, bytes(page))
    updated = dict(pages)
    for pfn in memory.dirty:
        updated[pfn] = memory.read(pfn)
    differential = store.upload(1, updated, dirty_pfns=memory.dirty)
    print(
        f"reintegration: {differential.pages_sent} dirty pages pushed "
        f"back ({differential.compressed_mib * 1024:.1f} KiB compressed)"
    )
    for pfn in dirtied:
        assert store.fetch_page(1, pfn)[:8] == b"DIRTYPG!"
    print("differential upload verified: the store now holds the edits")

    # 5: the paper-scale micro-benchmark numbers for a real 4 GiB VM.
    print()
    report = ConsolidationMicrobench().run()
    rows = [(label, f"{value:.1f} s") for label, value in report.rows().items()]
    print(format_table(["operation (4 GiB desktop VM)", "latency"], rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
