#!/usr/bin/env python3
"""Oasis on a *server* farm: the paper's §1 motivation, quantified.

The paper opens with Hadoop, Elasticsearch, and Zookeeper members that
must stay powered and network-present for heartbeats yet idle almost
all day — workloads you cannot suspend to disk without breaking the
cluster.  §5.6 argues such farms should consolidate at least as well as
desktops.  This example builds exactly that population — service
members, nightly batch workers, diurnal front ends — and runs Oasis
over it next to the VDI baseline.

Run with::

    python examples/server_farm.py
"""

from repro import DayType, FarmConfig, FULL_TO_PARTIAL, simulate_day
from repro.analysis import format_percent, format_table
from repro.farm import FarmSimulation
from repro.traces import compute_ensemble_stats
from repro.traces.servers import (
    BATCH_WORKER,
    FRONT_END,
    SERVICE_MEMBER,
    generate_server_ensemble,
)


def main() -> int:
    config = FarmConfig()  # same rack as the paper: 30 + 4 hosts

    # A plausible 900-VM service estate: mostly quiet cluster members,
    # a batch tier, and a request-driven front tier.
    ensemble = generate_server_ensemble(
        {SERVICE_MEMBER: 540, BATCH_WORKER: 180, FRONT_END: 180}, seed=7
    )
    print("server-farm activity:", compute_ensemble_stats(ensemble))

    server_run = FarmSimulation(config, FULL_TO_PARTIAL, ensemble, seed=7)
    server_result = server_run.run()
    vdi_result = simulate_day(config, FULL_TO_PARTIAL, DayType.WEEKDAY, seed=7)

    rows = [
        ["energy savings",
         format_percent(server_result.savings_fraction),
         format_percent(vdi_result.savings_fraction)],
        ["home-host sleep",
         format_percent(server_result.mean_home_sleep_fraction()),
         format_percent(vdi_result.mean_home_sleep_fraction())],
        ["peak active VMs",
         str(server_result.peak_active_vms), str(vdi_result.peak_active_vms)],
        ["min powered hosts",
         str(server_result.min_powered_hosts),
         str(vdi_result.min_powered_hosts)],
        ["zero-delay wake-ups",
         format_percent(server_result.zero_delay_fraction()),
         format_percent(vdi_result.zero_delay_fraction())],
    ]
    print()
    print(format_table(["metric", "server farm", "VDI farm"], rows))
    print()
    print(
        "the always-on members never need suspension to disk — they stay "
        "network-present as partial VMs while their homes sleep, which is "
        "precisely the §1 requirement that rules out suspend-to-disk"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
