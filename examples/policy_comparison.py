#!/usr/bin/env python3
"""Compare the four consolidation policies over a weekday and a weekend.

Reproduces the core of the paper's Figure 8 at the default four
consolidation hosts: OnlyPartial (the pure Jettison approach) saves
little, the hybrid Default helps, and FulltoPartial's exchange
optimization unlocks the headline savings; NewHome adds nothing more.

Run with::

    python examples/policy_comparison.py [--runs N]
"""

import argparse

from repro import ALL_POLICIES, DayType, FarmConfig
from repro.analysis import format_percent, format_table
from repro.farm.sweep import average_savings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=2,
                        help="repetitions per configuration (paper: 5)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = FarmConfig()
    rows = []
    for policy in ALL_POLICIES:
        cells = [policy.name]
        for day_type in (DayType.WEEKDAY, DayType.WEEKEND):
            point = average_savings(
                config, policy, day_type, runs=args.runs,
                base_seed=args.seed,
            )
            cells.append(
                f"{format_percent(point.mean_savings)} "
                f"± {format_percent(point.std_savings)}"
            )
        rows.append(cells)
        print(f"finished {policy.name}")

    print()
    print(format_table(
        ["policy", "weekday savings", "weekend savings"], rows
    ))
    print()
    print("paper anchors: OnlyPartial ~6%; FulltoPartial 28% weekday / "
          "43% weekend; NewHome ~= FulltoPartial")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
