#!/usr/bin/env python3
"""Quickstart: simulate one day of an Oasis-managed VDI farm.

Builds the paper's standard rack (30 home hosts x 30 VMs, four
consolidation hosts), generates a synthetic weekday of user activity for
the 900 desktop users, runs the FulltoPartial policy, and prints the
headline numbers.

Run with::

    python examples/quickstart.py [seed]
"""

import sys

from repro import DayType, FarmConfig, FULL_TO_PARTIAL, simulate_day
from repro.analysis import Cdf, format_percent


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0

    config = FarmConfig()  # the paper's standard setup
    print(
        f"simulating {config.total_vms} VMs on {config.home_hosts} home + "
        f"{config.consolidation_hosts} consolidation hosts "
        f"({FULL_TO_PARTIAL.name} policy, weekday, seed {seed}) ..."
    )
    result = simulate_day(config, FULL_TO_PARTIAL, DayType.WEEKDAY, seed=seed)

    print()
    print(f"energy savings     {format_percent(result.savings_fraction)} "
          f"(paper: up to 28% on weekdays)")
    print(f"baseline energy    {result.energy.baseline_wh / 1000:.1f} kWh")
    print(f"managed energy     {result.energy.managed_wh / 1000:.1f} kWh")
    print(f"home-host sleep    "
          f"{format_percent(result.mean_home_sleep_fraction())} of the day")
    print(f"peak active VMs    {result.peak_active_vms} / {config.total_vms}")
    print(f"smallest cluster   {result.min_powered_hosts} powered hosts")

    delays = result.delay_values()
    cdf = Cdf(delays)
    print()
    print(f"user transitions   {len(delays)} "
          f"({format_percent(result.zero_delay_fraction())} saw no delay)")
    print(f"delay p50 / p99    {cdf.median():.1f} s / "
          f"{cdf.percentile(99):.1f} s")
    print(f"network traffic    "
          f"{result.traffic.network_total_mib() / 1024:.0f} GiB")
    print()
    print("migrations:", result.counters)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
